#include "eval/reliability.h"

#include <algorithm>

namespace wwt {

namespace {

bool HeaderIntersects(const QueryColumn& ql, const CandidateColumn& col) {
  for (const auto& row : col.header_terms) {
    for (TermId t : ql.terms) {
      if (std::find(row.begin(), row.end(), t) != row.end()) return true;
    }
  }
  return false;
}

bool InAnyHeaderRow(const CandidateColumn& col, TermId t, int skip_row) {
  for (int r = 0; r < static_cast<int>(col.header_terms.size()); ++r) {
    if (r == skip_row) continue;
    const auto& row = col.header_terms[r];
    if (std::find(row.begin(), row.end(), t) != row.end()) return true;
  }
  return false;
}

}  // namespace

PartReliability EstimateReliability(const std::vector<EvalCase>& cases,
                                    ReliabilityCounts* counts_out) {
  ReliabilityCounts counts;

  for (const EvalCase& c : cases) {
    for (size_t t = 0; t < c.retrieval.tables.size(); ++t) {
      const CandidateTable& table = c.retrieval.tables[t];
      // Only relevant tables participate (§3.2.1: "all Q_l and
      // relevant t").
      bool relevant = false;
      for (int l : c.truth[t]) relevant |= (l != kLabelNr);
      if (!relevant) continue;

      for (int l = 0; l < c.query.q(); ++l) {
        const QueryColumn& ql = c.query.cols[l];
        for (int col = 0; col < table.num_cols; ++col) {
          if (!HeaderIntersects(ql, table.cols[col])) continue;
          const bool correct = c.truth[t][col] == l;

          bool in_title = false, in_context = false, in_other_row = false,
               in_other_col = false, in_body = false;
          for (TermId term : ql.terms) {
            if (table.title_terms.count(term)) in_title = true;
            if (table.context_terms.count(term)) in_context = true;
            if (InAnyHeaderRow(table.cols[col], term, -1) &&
                table.num_header_rows > 1) {
              // Token present in some header row of this column; a
              // conservative stand-in for the Hc part.
              in_other_row = true;
            }
            for (int c2 = 0; c2 < table.num_cols; ++c2) {
              if (c2 == col) continue;
              if (InAnyHeaderRow(table.cols[c2], term, -1)) {
                in_other_col = true;
              }
            }
            if (table.frequent_terms_all.count(term)) in_body = true;
          }
          if (in_title) {
            ++counts.title_hits;
            counts.title_correct += correct;
          }
          if (in_context) {
            ++counts.context_hits;
            counts.context_correct += correct;
          }
          if (in_other_row) {
            ++counts.other_row_hits;
            counts.other_row_correct += correct;
          }
          if (in_other_col) {
            ++counts.other_col_hits;
            counts.other_col_correct += correct;
          }
          if (in_body) {
            ++counts.body_hits;
            counts.body_correct += correct;
          }
        }
      }
    }
  }

  PartReliability p;  // defaults = paper values
  auto ratio = [](int correct, int hits, double fallback) {
    return hits > 0 ? static_cast<double>(correct) / hits : fallback;
  };
  p.title = ratio(counts.title_correct, counts.title_hits, p.title);
  p.context = ratio(counts.context_correct, counts.context_hits,
                    p.context);
  p.other_header_row = ratio(counts.other_row_correct,
                             counts.other_row_hits, p.other_header_row);
  p.other_header_col = ratio(counts.other_col_correct,
                             counts.other_col_hits, p.other_header_col);
  p.frequent_body = ratio(counts.body_correct, counts.body_hits,
                          p.frequent_body);
  if (counts_out != nullptr) *counts_out = counts;
  return p;
}

}  // namespace wwt
