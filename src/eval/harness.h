// Copyright 2026 The WWT Authors
//
// Evaluation harness: retrieves each workload query's candidate tables
// once (through the real two-phase probe), attaches ground-truth labels,
// and evaluates any column-mapping method on the shared candidate sets —
// exactly how §5 compares Basic / NbrText / PMI2 / WWT and the Table 2
// inference algorithms.

#ifndef WWT_EVAL_HARNESS_H_
#define WWT_EVAL_HARNESS_H_

#include <functional>
#include <string>
#include <vector>

#include "corpus/corpus_generator.h"
#include "eval/metrics.h"
#include "wwt/engine.h"
#include "wwt/service.h"

namespace wwt {

/// One query's frozen evaluation inputs.
struct EvalCase {
  ResolvedQuery resolved;
  Query query;
  RetrievalResult retrieval;
  /// Ground-truth labels per candidate table (external encoding).
  std::vector<std::vector<int>> truth;
  /// Timing of the retrieval stages (feeds Fig. 7).
  StageTimer retrieval_timing;

  int num_relevant_truth() const;
};

/// A method under evaluation: maps (query, candidates) -> MapResult.
using MappingFn = std::function<MapResult(
    const Query&, const std::vector<CandidateTable>&)>;

class EvalHarness {
 public:
  /// `corpus` must outlive the harness. `num_threads` sizes the
  /// WwtService used by BuildCases (0 = hardware concurrency; 1 =
  /// fully serial).
  EvalHarness(const Corpus* corpus, EngineOptions engine_options = {},
              int num_threads = 0);

  /// Runs retrieval + truth labeling for every workload query, batched
  /// through a retrieval-only WwtService batch. Results are
  /// deterministic and identical to serial retrieval (case order
  /// follows the workload order).
  std::vector<EvalCase> BuildCases();

  /// Per-query F1 error of `method` over `cases`.
  std::vector<double> Evaluate(const std::vector<EvalCase>& cases,
                               const MappingFn& method) const;

  /// Predicted labels per table for one case.
  static std::vector<std::vector<int>> PredictedLabels(
      const MapResult& result);

  /// Fig. 6 helper: consolidated-answer error of `mapping` against the
  /// ground-truth consolidation for one case.
  double AnswerError(const EvalCase& eval_case,
                     const MapResult& mapping) const;

  const Corpus* corpus() const { return corpus_; }
  const EngineOptions& engine_options() const { return engine_options_; }

 private:
  /// MapResult built from ground-truth labels (perfect mapper).
  MapResult TruthMapping(const EvalCase& eval_case) const;

  const Corpus* corpus_;
  EngineOptions engine_options_;
  int num_threads_;
};

}  // namespace wwt

#endif  // WWT_EVAL_HARNESS_H_
