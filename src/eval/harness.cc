#include "eval/harness.h"

#include "table/labels.h"
#include "util/logging.h"

namespace wwt {

int EvalCase::num_relevant_truth() const {
  int n = 0;
  for (const auto& labels : truth) {
    bool relevant = false;
    for (int l : labels) {
      if (l != kLabelNr) relevant = true;
    }
    n += relevant;
  }
  return n;
}

EvalHarness::EvalHarness(const Corpus* corpus, EngineOptions engine_options,
                         int num_threads)
    : corpus_(corpus),
      engine_options_(std::move(engine_options)),
      num_threads_(num_threads) {}

std::vector<EvalCase> EvalHarness::BuildCases() {
  std::vector<QueryRequest> requests;
  requests.reserve(corpus_->queries.size());
  for (const ResolvedQuery& rq : corpus_->queries) {
    QueryRequest request;
    for (const QueryColumnSpec& col : rq.spec.columns) {
      request.columns.push_back(col.keywords);
    }
    request.tag = rq.spec.name;
    request.retrieval_only = true;
    requests.push_back(std::move(request));
  }

  ServiceOptions service_options;
  service_options.engine = engine_options_;
  service_options.num_threads = num_threads_;
  StatusOr<std::unique_ptr<WwtService>> service =
      WwtService::Create(std::move(service_options));
  WWT_CHECK(service.ok()) << service.status();
  (*service)->SwapCorpus(CorpusHandle::Borrow(corpus_));
  BatchResponse batch = (*service)->RunBatch(std::move(requests));

  std::vector<EvalCase> cases;
  cases.reserve(batch.responses.size());
  for (size_t i = 0; i < batch.responses.size(); ++i) {
    QueryResponse& response = batch.responses[i];
    WWT_CHECK(response.ok()) << response.status;
    const ResolvedQuery& rq = corpus_->queries[i];
    EvalCase c;
    c.resolved = rq;
    c.query = std::move(response.query);
    c.retrieval = std::move(response.retrieval);
    c.retrieval_timing = std::move(response.timing);
    for (const CandidateTable& table : c.retrieval.tables) {
      c.truth.push_back(TruthLabels(rq, corpus_->TruthFor(table.table.id),
                                    table.num_cols));
    }
    cases.push_back(std::move(c));
  }
  return cases;
}

std::vector<std::vector<int>> EvalHarness::PredictedLabels(
    const MapResult& result) {
  std::vector<std::vector<int>> labels;
  labels.reserve(result.tables.size());
  for (const TableMapping& tm : result.tables) {
    labels.push_back(tm.labels);
  }
  return labels;
}

std::vector<double> EvalHarness::Evaluate(
    const std::vector<EvalCase>& cases, const MappingFn& method) const {
  std::vector<double> errors;
  errors.reserve(cases.size());
  for (const EvalCase& c : cases) {
    MapResult result = method(c.query, c.retrieval.tables);
    errors.push_back(F1Error(PredictedLabels(result), c.truth));
  }
  return errors;
}

MapResult EvalHarness::TruthMapping(const EvalCase& eval_case) const {
  MapResult result;
  for (size_t t = 0; t < eval_case.retrieval.tables.size(); ++t) {
    TableMapping tm;
    tm.id = eval_case.retrieval.tables[t].table.id;
    tm.labels = eval_case.truth[t];
    tm.relevant = false;
    for (int l : tm.labels) {
      if (l != kLabelNr) tm.relevant = true;
    }
    tm.relevance_prob = tm.relevant ? 1.0 : 0.0;
    result.tables.push_back(std::move(tm));
  }
  return result;
}

double EvalHarness::AnswerError(const EvalCase& eval_case,
                                const MapResult& mapping) const {
  AnswerTable predicted =
      Consolidate(eval_case.query, eval_case.retrieval.tables, mapping,
                  engine_options_.consolidator);
  AnswerTable truth =
      Consolidate(eval_case.query, eval_case.retrieval.tables,
                  TruthMapping(eval_case), engine_options_.consolidator);
  return RowSetError(predicted, truth);
}

}  // namespace wwt
