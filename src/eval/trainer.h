// Copyright 2026 The WWT Authors
//
// Training (§3.4): the objective has six parameters (w1..w5, we); with so
// few, the paper finds the best values by exhaustive enumeration over a
// grid, minimizing the F1 error of the highest-scoring mapping on a
// labeled split. Baseline thresholds are trained the same way.

#ifndef WWT_EVAL_TRAINER_H_
#define WWT_EVAL_TRAINER_H_

#include <vector>

#include "core/baselines.h"
#include "eval/harness.h"

namespace wwt {

struct WwtGrid {
  std::vector<double> w1{0.8, 1.2};
  std::vector<double> w2{0.3, 0.7};
  std::vector<double> w3{0.0};  // swept only when use_pmi2
  std::vector<double> w4{0.3, 0.6, 0.9};
  std::vector<double> w5{-0.1, -0.3, -0.5};
  std::vector<double> we{0.5, 1.0, 1.5, 2.0};
};

struct WwtTrainResult {
  MapperWeights weights;
  double mean_error = 0;
  int configs_tried = 0;
};

/// Exhaustive grid search for the mapper weights on `cases`; all other
/// options (mode, feature settings) come from `base_options`.
WwtTrainResult TrainWwtWeights(const TableIndex* index,
                               const std::vector<EvalCase>& cases,
                               const MapperOptions& base_options,
                               const WwtGrid& grid = {});

struct BaselineGrid {
  std::vector<double> table_threshold{0.05, 0.10, 0.20, 0.30, 0.40, 0.50};
  std::vector<double> column_threshold{0.10, 0.20, 0.30, 0.40, 0.50};
  std::vector<double> pmi_weight{1.0, 2.0, 4.0};  // kPmi2 only
};

struct BaselineTrainResult {
  BaselineOptions options;
  double mean_error = 0;
  int configs_tried = 0;
};

/// Grid search for a baseline's thresholds.
BaselineTrainResult TrainBaseline(const TableIndex* index,
                                  const std::vector<EvalCase>& cases,
                                  const BaselineOptions& base_options,
                                  const BaselineGrid& grid = {});

}  // namespace wwt

#endif  // WWT_EVAL_TRAINER_H_
