#include "util/logging.h"

#include <atomic>

#include "util/thread_annotations.h"

namespace wwt {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

/// Serializes sink emission so concurrent log lines never interleave
/// mid-line. Function-local static: safe to log from static
/// initializers and destructors of other TUs.
Mutex& EmitMutex() {
  static Mutex mu;
  return mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }
void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel()) {
    MutexLock lock(EmitMutex());
    std::cerr << stream_.str() << "\n";
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* expr) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: " << expr
          << " ";
}

FatalLogMessage::~FatalLogMessage() {
  {
    // Scoped so the process never aborts while holding the emit lock —
    // another thread mid-log must not turn a CHECK failure into a hang
    // of its own (abort() can run atexit-adjacent machinery).
    MutexLock lock(EmitMutex());
    std::cerr << stream_.str() << std::endl;
  }
  std::abort();
}

}  // namespace internal
}  // namespace wwt
