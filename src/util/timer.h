// Copyright 2026 The WWT Authors
//
// Wall-clock timing used by the runtime-breakdown experiments (Fig. 7).

#ifndef WWT_UTIL_TIMER_H_
#define WWT_UTIL_TIMER_H_

#include <chrono>
#include <map>
#include <string>

namespace wwt {

/// Simple wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named stage timings; the Fig. 7 bench reads these back to
/// print the per-query breakdown (index probes, table reads, column map,
/// consolidate).
class StageTimer {
 public:
  /// Adds `seconds` to stage `name`.
  void Add(const std::string& name, double seconds) {
    stages_[name] += seconds;
  }

  /// Seconds recorded against `name` (0 if never recorded).
  double Get(const std::string& name) const {
    auto it = stages_.find(name);
    return it == stages_.end() ? 0.0 : it->second;
  }

  /// Sum over all stages.
  double Total() const {
    double t = 0;
    for (const auto& [_, v] : stages_) t += v;
    return t;
  }

  const std::map<std::string, double>& stages() const { return stages_; }

  void Clear() { stages_.clear(); }

 private:
  std::map<std::string, double> stages_;
};

/// RAII helper: adds the scope's duration to a StageTimer on destruction.
class ScopedStageTimer {
 public:
  ScopedStageTimer(StageTimer* sink, std::string name)
      : sink_(sink), name_(std::move(name)) {}
  ~ScopedStageTimer() { sink_->Add(name_, timer_.ElapsedSeconds()); }

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  StageTimer* sink_;
  std::string name_;
  WallTimer timer_;
};

}  // namespace wwt

#endif  // WWT_UTIL_TIMER_H_
