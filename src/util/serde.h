// Copyright 2026 The WWT Authors
//
// Binary serialization primitives for the snapshot subsystem: a Writer
// that accumulates little-endian fixed-width fields into a buffer, a
// bounds-checked Reader that turns truncation/corruption into clean
// Status errors (never UB), and file helpers — atomic whole-file write
// and an mmap-or-read InputFile for fast snapshot loads.
//
// Layout rules (shared by writer and reader, see docs/SNAPSHOTS.md):
//  * integers are little-endian fixed width (u8/u32/u64),
//  * floating point is serialized as its IEEE-754 bit pattern,
//  * strings and byte blobs are u64-length-prefixed,
//  * containers are u64-count-prefixed.

#ifndef WWT_UTIL_SERDE_H_
#define WWT_UTIL_SERDE_H_

#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace wwt::serde {

/// Accumulates serialized fields into an in-memory buffer. All writes
/// append; the finished buffer is written out in one atomic step.
class Writer {
 public:
  void WriteU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void WriteU32(uint32_t v) { WriteLittleEndian(v); }
  void WriteU64(uint64_t v) { WriteLittleEndian(v); }
  void WriteI32(int32_t v) { WriteLittleEndian(static_cast<uint32_t>(v)); }

  /// IEEE-754 bit patterns; bit-exact round-trips.
  void WriteFloat(float v) {
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    WriteU32(bits);
  }
  void WriteDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    WriteU64(bits);
  }

  /// u64 length prefix + raw bytes.
  void WriteString(std::string_view s) {
    WriteU64(s.size());
    buf_.append(s.data(), s.size());
  }
  void WriteBytes(const void* data, size_t size) {
    buf_.append(static_cast<const char*>(data), size);
  }

  /// Unsigned LEB128 varint: 7 payload bits per byte, low group first,
  /// high bit = continuation. At most 10 bytes for a u64.
  void WriteVarint(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<char>((v & 0x7f) | 0x80));
      v >>= 7;
    }
    buf_.push_back(static_cast<char>(v));
  }

  /// Emits a self-describing `[u32 pad_len][pad_len zero bytes]` marker
  /// sized so that `base_offset + size()` lands on a multiple of
  /// `alignment` afterwards — the writer half of Reader::AlignTo.
  /// `base_offset` is the absolute file offset this buffer will be
  /// written at (kHeaderBytes for a snapshot payload), so the raw
  /// arrays that follow are aligned in the *file*, and therefore in any
  /// page-aligned mapping of it.
  void AlignTo(size_t alignment, size_t base_offset) {
    const size_t at = base_offset + size() + sizeof(uint32_t);
    const size_t pad = (alignment - at % alignment) % alignment;
    WriteU32(static_cast<uint32_t>(pad));
    buf_.append(pad, '\0');
  }

  /// Overwrites the 8 bytes at `offset` with the little-endian encoding
  /// of `v` — for length slots reserved with WriteU64(0) and patched
  /// once the enclosed bytes are written (avoids buffering every
  /// section separately). offset + 8 must be within the buffer.
  void PatchU64(size_t offset, uint64_t v) {
    for (size_t i = 0; i < sizeof(v); ++i) {
      buf_[offset + i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
  }

  const std::string& buffer() const { return buf_; }
  std::string TakeBuffer() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void WriteLittleEndian(T v) {
    char bytes[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); ++i) {
      bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
    buf_.append(bytes, sizeof(T));
  }

  std::string buf_;
};

/// Bounds-checked cursor over a borrowed byte span. Every Read* either
/// fills its output and advances, or returns Corruption and leaves the
/// cursor where it was — a truncated or garbage file can never read out
/// of bounds.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  Status ReadU8(uint8_t* out);
  Status ReadU32(uint32_t* out);
  Status ReadU64(uint64_t* out);
  Status ReadI32(int32_t* out);
  Status ReadFloat(float* out);
  Status ReadDouble(double* out);

  /// Reads a u64-length-prefixed string. The length is validated against
  /// the remaining bytes before any allocation, so a corrupt length
  /// cannot trigger a huge allocation.
  Status ReadString(std::string* out);

  /// Borrows `size` raw bytes from the underlying span.
  Status ReadSpan(uint64_t size, std::string_view* out);

  /// Borrows `count` raw elements of `elem_size` bytes each without
  /// copying; fails cleanly on overflow or truncation. Callers
  /// reinterpret the pointer as a fixed-width little-endian array read
  /// in place from the mapping — valid only after an AlignTo() sized
  /// for the element type.
  Status ReadRaw(uint64_t count, size_t elem_size, const char** out);

  /// Unsigned LEB128 varint (see Writer::WriteVarint).
  Status ReadVarint(uint64_t* out);

  /// Consumes the self-describing pad written by Writer::AlignTo and
  /// verifies the cursor actually landed on a multiple of `alignment`
  /// relative to `base_offset` (the absolute file offset of this
  /// reader's first byte). A desynced or doctored pad is Corruption —
  /// never a misaligned raw-array read.
  Status AlignTo(size_t alignment, size_t base_offset);

  Status Skip(uint64_t n);

  /// Validates a container count read from the file: every element needs
  /// at least `min_elem_bytes` more bytes, so `count` beyond that is
  /// corruption (and would otherwise drive a giant resize()).
  Status CheckCount(uint64_t count, size_t min_elem_bytes) const;

  size_t offset() const { return offset_; }
  size_t remaining() const { return data_.size() - offset_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  template <typename T>
  Status ReadLittleEndian(T* out);

  std::string_view data_;
  size_t offset_ = 0;
};

/// Checksum used by the snapshot trailer (FNV-1a 64, stable across
/// platforms).
uint64_t Checksum(std::string_view payload);

/// Writes the concatenation of `parts` to `path` atomically: a sibling
/// tmp file is written, flushed, and renamed over `path`, so readers
/// never observe a half-written file. Taking multiple spans lets a
/// header + payload be written without gluing them into one buffer.
[[nodiscard]] Status WriteFileAtomic(const std::string& path,
                       std::initializer_list<std::string_view> parts);
[[nodiscard]] inline Status WriteFileAtomic(const std::string& path,
                                            std::string_view contents) {
  return WriteFileAtomic(path, {contents});
}

/// Directory prefix of `path` including the trailing '/', or "" when
/// the path has no directory component — the one definition manifests
/// and their relative shard paths resolve against everywhere.
std::string DirName(const std::string& path);

/// Creates every missing directory on the path to `path`'s parent
/// (mkdir -p for the dirname).
[[nodiscard]] Status EnsureParentDir(const std::string& path);

/// Read-only file contents, memory-mapped when the platform supports it
/// (falling back to a plain read). Move-only; unmaps on destruction.
class InputFile {
 public:
  static StatusOr<InputFile> Open(const std::string& path);

  InputFile(InputFile&& other) noexcept { *this = std::move(other); }
  InputFile& operator=(InputFile&& other) noexcept;
  InputFile(const InputFile&) = delete;
  InputFile& operator=(const InputFile&) = delete;
  ~InputFile();

  std::string_view data() const {
    return mapped_ ? std::string_view(static_cast<const char*>(map_), size_)
                   : std::string_view(owned_);
  }
  bool mapped() const { return mapped_; }
  size_t size() const { return mapped_ ? size_ : owned_.size(); }

 private:
  InputFile() = default;

  bool mapped_ = false;
  void* map_ = nullptr;  // mmap'ed region when mapped_
  size_t size_ = 0;
  std::string owned_;  // fallback contents when !mapped_
};

}  // namespace wwt::serde

#endif  // WWT_UTIL_SERDE_H_
