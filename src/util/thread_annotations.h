// Copyright 2026 The WWT Authors
//
// Clang Thread Safety Analysis for the concurrent core, and the
// annotatable mutex vocabulary the whole tree locks with.
//
// Every mutex-holding class (ThreadPool, ResponseCache, WwtService,
// TableIndex's scoring lock, the logging sink) declares its lock as a
// wwt::Mutex and its protected state with WWT_GUARDED_BY, so a clang
// build (`-Wthread-safety`, promoted to an error by WWT_WERROR in CI)
// proves the locking discipline at compile time: an access to guarded
// state without the lock, a Wait() without its mutex, or a function
// called without a WWT_REQUIRES'd capability is a build break, not a
// latent race. On GCC (which has no thread safety analysis) every
// macro expands to nothing and wwt::Mutex behaves exactly like the
// std::mutex it wraps — pinned by tests/util_annotations_test.cc.
//
// Policy: WWT_NO_THREAD_SAFETY_ANALYSIS exists for the one legitimate
// use (lock implementations themselves); it must never appear outside
// this header. Lock-free publication (e.g. TableIndex's scoring layout,
// released through an acquire/release atomic) is *documented* at the
// field instead of annotated — Clang's analysis models locks, not
// release sequences, and a false GUARDED_BY would force spurious locks
// onto the hot read path.

#ifndef WWT_UTIL_THREAD_ANNOTATIONS_H_
#define WWT_UTIL_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------- attributes
//
// The full attribute set of Clang's -Wthread-safety, no-ops elsewhere.
// Names follow the modern "capability" spelling (a mutex is one kind of
// capability); the macros are the only way the tree spells them.

#if defined(__clang__)
#define WWT_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define WWT_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside clang
#endif

/// Declares a type to be a lockable capability ("mutex").
#define WWT_CAPABILITY(x) WWT_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII type whose lifetime acquires/releases a capability.
#define WWT_SCOPED_CAPABILITY WWT_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// The data member is protected by the given capability: reads require
/// it held (shared or exclusive), writes require it exclusive.
#define WWT_GUARDED_BY(x) WWT_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Like WWT_GUARDED_BY for pointers: the *pointee* is protected.
#define WWT_PT_GUARDED_BY(x) WWT_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// The function may only be called with the capabilities already held
/// (and does not release them).
#define WWT_REQUIRES(...) \
  WWT_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// The function may only be called with the capabilities NOT held
/// (it acquires them itself; calling with them held would deadlock).
#define WWT_EXCLUDES(...) \
  WWT_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define WWT_ACQUIRE(...) \
  WWT_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// The function releases a held capability.
#define WWT_RELEASE(...) \
  WWT_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// The function tries to acquire the capability; the first argument is
/// the return value that means success.
#define WWT_TRY_ACQUIRE(...) \
  WWT_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// The function returns a reference to the given capability.
#define WWT_RETURN_CAPABILITY(x) \
  WWT_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Asserts (at analysis time) that the capability is held.
#define WWT_ASSERT_CAPABILITY(x) \
  WWT_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Escape hatch for lock *implementations*. Never use outside this
/// header — the CI tidy/annotation gate greps for it.
#define WWT_NO_THREAD_SAFETY_ANALYSIS \
  WWT_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

namespace wwt {

// -------------------------------------------------------------- Mutex
//
// std::mutex is not an annotatable capability (libstdc++ carries no
// thread-safety attributes), so the tree locks through this wrapper.
// Zero overhead: every method is an inline forward to the wrapped
// std::mutex.

class WWT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() WWT_ACQUIRE() { mu_.lock(); }
  void Unlock() WWT_RELEASE() { mu_.unlock(); }
  bool TryLock() WWT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// ---------------------------------------------------------- MutexLock
//
// The only sanctioned way to hold a wwt::Mutex: a scoped lock the
// analysis understands (std::lock_guard over a wrapped mutex would be
// invisible to it).

class WWT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) WWT_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() WWT_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// ------------------------------------------------------------ CondVar
//
// Condition variable bound to wwt::Mutex. Wait() atomically releases
// and reacquires the caller's already-held mutex, exactly like
// std::condition_variable::wait — the WWT_REQUIRES(mu) annotation makes
// "wait without the lock" a compile error under clang. Callers loop on
// their own condition:
//
//   MutexLock lock(mu_);
//   while (!ready_) cv_.Wait(mu_);     // ready_ is WWT_GUARDED_BY(mu_)
//
// (a predicate lambda would read guarded state from an un-annotated
// closure, which the analysis rejects — the explicit while loop is the
// annotated idiom).

class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Releases `mu`, blocks until notified, reacquires `mu`. Spurious
  /// wakeups happen; always re-check the condition in a loop.
  void Wait(Mutex& mu) WWT_REQUIRES(mu) {
    // Adopt the caller's held lock for the duration of the wait, then
    // release ownership back without unlocking: the caller still holds
    // the mutex on return, as the annotation promises.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Timed Wait: releases `mu`, blocks until notified or `seconds`
  /// elapse, reacquires `mu`. Returns false on timeout. Same idiom as
  /// Wait — re-check the guarded condition in a loop either way.
  bool WaitFor(Mutex& mu, double seconds) WWT_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const bool notified =
        cv_.wait_for(lock, std::chrono::duration<double>(seconds)) ==
        std::cv_status::no_timeout;
    lock.release();
    return notified;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace wwt

#endif  // WWT_UTIL_THREAD_ANNOTATIONS_H_
