// Copyright 2026 The WWT Authors
//
// StatusOr<T>: a value-or-error union, Arrow's Result<T> idiom.

#ifndef WWT_UTIL_STATUSOR_H_
#define WWT_UTIL_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace wwt {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. Construction from a value yields ok(); construction from
/// a non-OK Status yields an error. Accessing the value of an error
/// StatusOr is a programming error (asserted in debug builds).
///
/// [[nodiscard]] like Status: ignoring a returned StatusOr discards
/// both the value and the error — always a bug. See Status for the
/// enforcement story ((void)-cast intentional drops).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from an error status. Must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  /// Constructs from a value.
  StatusOr(T value)  // NOLINT
      : status_(Status::OK()), value_(std::move(value)) {}

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  /// The status; OK when a value is present.
  const Status& status() const { return status_; }

  /// Value accessors; only valid when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates the error of a StatusOr expression, or assigns its value.
///
///   WWT_ASSIGN_OR_RETURN(auto table, store.Get(id));
#define WWT_ASSIGN_OR_RETURN(decl, expr)            \
  decl = ({                                         \
    auto _res = (expr);                             \
    if (!_res.ok()) return _res.status();           \
    std::move(_res).value();                        \
  })

}  // namespace wwt

#endif  // WWT_UTIL_STATUSOR_H_
