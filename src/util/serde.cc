#include "util/serde.h"

#include <cstdio>
#include <memory>

#include "util/hash.h"

#if defined(__unix__) || defined(__APPLE__)
#define WWT_SERDE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#include <sys/stat.h>
#endif

namespace wwt::serde {

template <typename T>
Status Reader::ReadLittleEndian(T* out) {
  if (remaining() < sizeof(T)) {
    return Status::Corruption("truncated input: need ", sizeof(T),
                              " bytes at offset ", offset_, ", have ",
                              remaining());
  }
  T v = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(static_cast<unsigned char>(data_[offset_ + i]))
         << (8 * i);
  }
  *out = v;
  offset_ += sizeof(T);
  return Status::OK();
}

Status Reader::ReadU8(uint8_t* out) { return ReadLittleEndian(out); }
Status Reader::ReadU32(uint32_t* out) { return ReadLittleEndian(out); }
Status Reader::ReadU64(uint64_t* out) { return ReadLittleEndian(out); }

Status Reader::ReadI32(int32_t* out) {
  uint32_t bits;
  WWT_RETURN_NOT_OK(ReadU32(&bits));
  *out = static_cast<int32_t>(bits);
  return Status::OK();
}

Status Reader::ReadFloat(float* out) {
  uint32_t bits;
  WWT_RETURN_NOT_OK(ReadU32(&bits));
  std::memcpy(out, &bits, sizeof(*out));
  return Status::OK();
}

Status Reader::ReadDouble(double* out) {
  uint64_t bits;
  WWT_RETURN_NOT_OK(ReadU64(&bits));
  std::memcpy(out, &bits, sizeof(*out));
  return Status::OK();
}

Status Reader::ReadString(std::string* out) {
  uint64_t len;
  WWT_RETURN_NOT_OK(ReadU64(&len));
  if (len > remaining()) {
    return Status::Corruption("truncated input: string of ", len,
                              " bytes at offset ", offset_, ", have ",
                              remaining());
  }
  out->assign(data_.data() + offset_, len);
  offset_ += len;
  return Status::OK();
}

Status Reader::ReadSpan(uint64_t size, std::string_view* out) {
  if (size > remaining()) {
    return Status::Corruption("truncated input: span of ", size,
                              " bytes at offset ", offset_, ", have ",
                              remaining());
  }
  *out = data_.substr(offset_, size);
  offset_ += size;
  return Status::OK();
}

Status Reader::ReadRaw(uint64_t count, size_t elem_size,
                       const char** out) {
  if (elem_size == 0) elem_size = 1;
  if (count > remaining() / elem_size) {
    return Status::Corruption("truncated input: raw array of ", count,
                              " x ", elem_size, " bytes at offset ",
                              offset_, ", have ", remaining());
  }
  *out = data_.data() + offset_;
  offset_ += static_cast<size_t>(count) * elem_size;
  return Status::OK();
}

Status Reader::ReadVarint(uint64_t* out) {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (offset_ >= data_.size()) {
      return Status::Corruption("truncated varint at offset ", offset_);
    }
    const uint8_t b = static_cast<uint8_t>(data_[offset_++]);
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      *out = v;
      return Status::OK();
    }
  }
  return Status::Corruption("varint longer than 10 bytes at offset ",
                            offset_);
}

Status Reader::AlignTo(size_t alignment, size_t base_offset) {
  uint32_t pad;
  WWT_RETURN_NOT_OK(ReadU32(&pad));
  if (pad >= alignment) {
    return Status::Corruption("alignment pad of ", pad,
                              " bytes at offset ", offset_,
                              " exceeds alignment ", alignment);
  }
  WWT_RETURN_NOT_OK(Skip(pad));
  if ((base_offset + offset_) % alignment != 0) {
    return Status::Corruption("misaligned section data at file offset ",
                              base_offset + offset_, " (need ", alignment,
                              "-byte alignment)");
  }
  return Status::OK();
}

Status Reader::Skip(uint64_t n) {
  if (n > remaining()) {
    return Status::Corruption("truncated input: cannot skip ", n,
                              " bytes at offset ", offset_, ", have ",
                              remaining());
  }
  offset_ += n;
  return Status::OK();
}

Status Reader::CheckCount(uint64_t count, size_t min_elem_bytes) const {
  if (min_elem_bytes == 0) min_elem_bytes = 1;
  if (count > remaining() / min_elem_bytes) {
    return Status::Corruption("implausible element count ", count,
                              " at offset ", offset_, " (", remaining(),
                              " bytes remain)");
  }
  return Status::OK();
}

uint64_t Checksum(std::string_view payload) { return Fnv1a(payload); }

Status WriteFileAtomic(const std::string& path,
                       std::initializer_list<std::string_view> parts) {
  // Pid-suffixed so concurrent writers to the same path cannot
  // interleave into one tmp file; every failure path removes it.
#if WWT_SERDE_HAVE_MMAP
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
#else
  const std::string tmp = path + ".tmp";
#endif
  {
    std::unique_ptr<FILE, int (*)(FILE*)> f(std::fopen(tmp.c_str(), "wb"),
                                            &std::fclose);
    if (!f) return Status::IOError("cannot open '", tmp, "' for writing");
    for (std::string_view part : parts) {
      if (!part.empty() &&
          std::fwrite(part.data(), 1, part.size(), f.get()) !=
              part.size()) {
        f.reset();
        std::remove(tmp.c_str());
        return Status::IOError("short write to '", tmp, "'");
      }
    }
    if (std::fflush(f.get()) != 0) {
      f.reset();
      std::remove(tmp.c_str());
      return Status::IOError("flush failed for '", tmp, "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename '", tmp, "' to '", path, "'");
  }
  return Status::OK();
}

std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string()
                                    : path.substr(0, slash + 1);
}

Status EnsureParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos || slash == 0) return Status::OK();
  const std::string dir = path.substr(0, slash);
  // mkdir -p: create each component, tolerating ones that exist.
  for (size_t i = 1; i <= dir.size(); ++i) {
    if (i != dir.size() && dir[i] != '/') continue;
    const std::string prefix = dir.substr(0, i);
#if defined(_WIN32)
    (void)prefix;
    return Status::NotImplemented("EnsureParentDir on this platform");
#else
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IOError("cannot create directory '", prefix, "'");
    }
#endif
  }
  return Status::OK();
}

InputFile& InputFile::operator=(InputFile&& other) noexcept {
  if (this != &other) {
#if WWT_SERDE_HAVE_MMAP
    if (mapped_ && map_ != nullptr) ::munmap(map_, size_);
#endif
    mapped_ = other.mapped_;
    map_ = other.map_;
    size_ = other.size_;
    owned_ = std::move(other.owned_);
    other.mapped_ = false;
    other.map_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

InputFile::~InputFile() {
#if WWT_SERDE_HAVE_MMAP
  if (mapped_ && map_ != nullptr) ::munmap(map_, size_);
#endif
}

StatusOr<InputFile> InputFile::Open(const std::string& path) {
  InputFile file;
#if WWT_SERDE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open '", path, "' for reading");
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat '", path, "'");
  }
  file.size_ = static_cast<size_t>(st.st_size);
  if (file.size_ > 0) {
    void* map = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      file.map_ = map;
      file.mapped_ = true;
    }
  }
  ::close(fd);
  if (file.mapped_ || file.size_ == 0) {
    if (!file.mapped_) file.size_ = 0;  // empty file: serve the empty view
    return file;
  }
#endif
  // Fallback: read the whole file.
  std::unique_ptr<FILE, int (*)(FILE*)> f(std::fopen(path.c_str(), "rb"),
                                          &std::fclose);
  if (!f) return Status::IOError("cannot open '", path, "' for reading");
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
    file.owned_.append(buf, n);
  }
  if (std::ferror(f.get())) {
    return Status::IOError("read failed for '", path, "'");
  }
  file.mapped_ = false;
  return file;
}

}  // namespace wwt::serde
