#include "util/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace wwt {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool LooksNumeric(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) return false;
  size_t i = 0;
  if (s[i] == '+' || s[i] == '-' || s[i] == '$') ++i;
  bool saw_digit = false;
  bool saw_dot = false;
  for (; i < s.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(s[i]);
    if (std::isdigit(c)) {
      saw_digit = true;
    } else if (c == ',') {
      continue;  // thousands separator
    } else if (c == '.' && !saw_dot) {
      saw_dot = true;
    } else if (c == '%' && i == s.size() - 1) {
      continue;
    } else {
      return false;
    }
  }
  return saw_digit;
}

double UppercaseRatio(std::string_view s) {
  size_t alpha = 0, upper = 0;
  for (char ch : s) {
    unsigned char c = static_cast<unsigned char>(ch);
    if (std::isalpha(c)) {
      ++alpha;
      if (std::isupper(c)) ++upper;
    }
  }
  return alpha == 0 ? 0.0 : static_cast<double>(upper) / alpha;
}

size_t Levenshtein(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<size_t> prev(a.size() + 1), cur(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) prev[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    cur[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[a.size()];
}

size_t DamerauLevenshtein(std::string_view a, std::string_view b) {
  const size_t n = a.size(), m = b.size();
  // Three rolling rows: i-2, i-1, i.
  std::vector<size_t> two(m + 1), prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] &&
          a[i - 2] == b[j - 1]) {
        cur[j] = std::min(cur[j], two[j - 2] + 1);
      }
    }
    std::swap(two, prev);
    std::swap(prev, cur);
  }
  return prev[m];
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

}  // namespace wwt
