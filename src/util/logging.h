// Copyright 2026 The WWT Authors
//
// Minimal leveled logging and check macros.

#ifndef WWT_UTIL_LOGGING_H_
#define WWT_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace wwt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Default: kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-style log sink that emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Sink that aborts the process after emitting; used by WWT_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* expr);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define WWT_LOG(level)                                                 \
  ::wwt::internal::LogMessage(::wwt::LogLevel::k##level, __FILE__, __LINE__)

/// Aborts with a message when `cond` is false. Active in all build types:
/// these guard internal invariants whose violation would corrupt results.
#define WWT_CHECK(cond)                                            \
  if (cond) {                                                      \
  } else                                                           \
    ::wwt::internal::FatalLogMessage(__FILE__, __LINE__, #cond)

#define WWT_CHECK_OK(expr)                                     \
  do {                                                         \
    ::wwt::Status _st = (expr);                                \
    WWT_CHECK(_st.ok()) << _st.ToString();                     \
  } while (0)

}  // namespace wwt

#endif  // WWT_UTIL_LOGGING_H_
