// Copyright 2026 The WWT Authors
//
// Small string helpers shared across modules.

#ifndef WWT_UTIL_STRING_UTIL_H_
#define WWT_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace wwt {

/// ASCII lowercase copy (non-ASCII bytes pass through untouched).
std::string ToLower(std::string_view s);

/// Strips leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Splits on any character in `delims`, dropping empty pieces.
std::vector<std::string> Split(std::string_view s, std::string_view delims);

/// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True if every non-space character is a digit, or the string parses as a
/// decimal number (optionally signed, with commas or one dot, %, or units
/// stripped by the caller). Used by header detection and type sniffing.
bool LooksNumeric(std::string_view s);

/// Fraction of alphabetic characters that are uppercase; 0 for no alphas.
double UppercaseRatio(std::string_view s);

/// Classic dynamic-programming edit distance (unit costs).
size_t Levenshtein(std::string_view a, std::string_view b);

/// Edit distance with adjacent transpositions counted as one edit
/// (Damerau); what typo-tolerant row dedup wants ("Mackenzei" is one
/// edit from "Mackenzie").
size_t DamerauLevenshtein(std::string_view a, std::string_view b);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace wwt

#endif  // WWT_UTIL_STRING_UTIL_H_
