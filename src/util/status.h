// Copyright 2026 The WWT Authors
//
// Status: lightweight error propagation without exceptions, in the style of
// RocksDB's rocksdb::Status / Arrow's arrow::Status.

#ifndef WWT_UTIL_STATUS_H_
#define WWT_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace wwt {

/// Error categories used throughout the library. Keep this list short;
/// the message carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kDeadlineExceeded,
  kInternal,
  kIOError,
  kCorruption,
  kNotImplemented,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A Status encapsulates the result of an operation: success, or an error
/// code plus message. Statuses are cheap to copy (small string).
///
/// Typical use:
///
///   Status DoThing() {
///     if (bad) return Status::InvalidArgument("bad thing: ", detail);
///     return Status::OK();
///   }
///
/// Callers must check `ok()` before relying on side effects; the
/// WWT_RETURN_NOT_OK macro propagates errors up the stack.
///
/// The class itself is [[nodiscard]]: a call that returns a Status and
/// ignores it is a compile warning everywhere and a build break under
/// WWT_WERROR (CI). Silently dropped errors were exactly how the early
/// snapshot-corruption bugs hid; an intentional drop must say so with
/// a `(void)` cast at the call site, which is greppable.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  /// Success.
  static Status OK() { return Status(); }

  /// Factory helpers; each concatenates all arguments into the message.
  template <typename... Args>
  static Status InvalidArgument(Args&&... args) {
    return Status(StatusCode::kInvalidArgument, Concat(args...));
  }
  template <typename... Args>
  static Status NotFound(Args&&... args) {
    return Status(StatusCode::kNotFound, Concat(args...));
  }
  template <typename... Args>
  static Status AlreadyExists(Args&&... args) {
    return Status(StatusCode::kAlreadyExists, Concat(args...));
  }
  template <typename... Args>
  static Status OutOfRange(Args&&... args) {
    return Status(StatusCode::kOutOfRange, Concat(args...));
  }
  template <typename... Args>
  static Status FailedPrecondition(Args&&... args) {
    return Status(StatusCode::kFailedPrecondition, Concat(args...));
  }
  template <typename... Args>
  static Status DeadlineExceeded(Args&&... args) {
    return Status(StatusCode::kDeadlineExceeded, Concat(args...));
  }
  template <typename... Args>
  static Status Internal(Args&&... args) {
    return Status(StatusCode::kInternal, Concat(args...));
  }
  template <typename... Args>
  static Status IOError(Args&&... args) {
    return Status(StatusCode::kIOError, Concat(args...));
  }
  template <typename... Args>
  static Status Corruption(Args&&... args) {
    return Status(StatusCode::kCorruption, Concat(args...));
  }
  template <typename... Args>
  static Status NotImplemented(Args&&... args) {
    return Status(StatusCode::kNotImplemented, Concat(args...));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The error category.
  StatusCode code() const { return code_; }

  /// The error message; empty for OK.
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  template <typename... Args>
  static std::string Concat(Args&&... args) {
    std::string out;
    (AppendOne(&out, std::forward<Args>(args)), ...);
    return out;
  }
  static void AppendOne(std::string* out, const std::string& s) { *out += s; }
  static void AppendOne(std::string* out, const char* s) { *out += s; }
  static void AppendOne(std::string* out, char c) { *out += c; }
  template <typename T>
  static void AppendOne(std::string* out, const T& v) {
    *out += std::to_string(v);
  }

  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller.
#define WWT_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::wwt::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace wwt

#endif  // WWT_UTIL_STATUS_H_
