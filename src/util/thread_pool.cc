#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <climits>

namespace wwt {

namespace {

/// Identifies the pool (and worker slot) the current thread belongs to.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local int tls_worker_index = -1;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(num_threads, 1);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

int ThreadPool::CurrentWorkerIndex() const {
  return tls_pool == this ? tls_worker_index : -1;
}

int ThreadPool::DefaultNumThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

bool ThreadPool::Enqueue(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    if (stopping_) return false;  // lost the race: Submit fails the future
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
  return true;
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::WorkerLoop(int worker_index) {
  tls_pool = this;
  tls_worker_index = worker_index;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Submit's wrapper routes any exception into the task's future; a
    // bare std::function task that throws would terminate, as with
    // std::thread.
    task();
  }
}

void ParallelFor(ThreadPool* pool, size_t n, int concurrency,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  int shards = concurrency <= 0 ? pool->num_threads() : concurrency;
  shards = std::min<int>({shards, pool->num_threads(),
                          static_cast<int>(std::min<size_t>(n, INT_MAX))});

  auto next = std::make_shared<std::atomic<size_t>>(0);
  std::vector<std::future<void>> done;
  done.reserve(shards);
  for (int s = 0; s < shards; ++s) {
    done.push_back(pool->Submit([next, n, &fn] {
      for (size_t i = next->fetch_add(1); i < n; i = next->fetch_add(1)) {
        fn(i);
      }
    }));
  }
  // Every shard must finish before we return (or rethrow): they hold
  // references to the caller's stack (`fn`, `n`). The first exception is
  // saved and rethrown only once all shards are done.
  std::exception_ptr first_error;
  for (std::future<void>& f : done) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace wwt
