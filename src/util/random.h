// Copyright 2026 The WWT Authors
//
// Deterministic pseudo-random generator used by the corpus generator and
// tests. All randomness in the library flows through Random so experiments
// are reproducible from a single seed.

#ifndef WWT_UTIL_RANDOM_H_
#define WWT_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace wwt {

/// xorshift128+ generator. Not cryptographic; fast and reproducible across
/// platforms (unlike std::mt19937 distributions, whose outputs are not
/// standardized for all distribution types).
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Gaussian via Box-Muller.
  double Gaussian(double mean, double stddev);

  /// Zipf-distributed rank in [0, n) with exponent s (s=0 -> uniform).
  uint64_t Zipf(uint64_t n, double s);

  /// Samples an index according to non-negative `weights` (need not sum
  /// to one). Returns weights.size() - 1 on degenerate input.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k clamped to n).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator; used to give each query /
  /// page its own stream so adding pages does not perturb others.
  Random Fork();

 private:
  uint64_t s_[2];
};

}  // namespace wwt

#endif  // WWT_UTIL_RANDOM_H_
