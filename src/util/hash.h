// Copyright 2026 The WWT Authors
//
// Small hashing helpers.

#ifndef WWT_UTIL_HASH_H_
#define WWT_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

namespace wwt {

/// FNV-1a 64-bit hash; stable across platforms (used to derive
/// deterministic per-query seeds).
inline uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Boost-style hash combiner.
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace wwt

#endif  // WWT_UTIL_HASH_H_
