// Copyright 2026 The WWT Authors
//
// Fixed-size worker pool over a FIFO task queue — the execution substrate
// of the batch query-serving layer (QueryRunner) and the parallel
// evaluation harness. Tasks are arbitrary callables submitted with
// Submit(); results and exceptions travel back through std::future.

#ifndef WWT_UTIL_THREAD_POOL_H_
#define WWT_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace wwt {

/// A fixed set of worker threads draining a shared FIFO queue.
///
/// * Submit() never blocks (the queue is unbounded) and is safe from any
///   thread, including pool workers.
/// * Tasks submitted from one thread start in FIFO order; with more than
///   one worker they naturally run (and finish) concurrently.
/// * An exception thrown by a task is captured into its future and
///   rethrown by future::get() — workers never die from task exceptions.
/// * Shutdown() (implied by the destructor) drains every already-queued
///   task, then joins the workers.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Drains the queue and joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future for its result. Must not be
  /// called after Shutdown().
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task] { (*task)(); });
    return future;
  }

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Index of the calling worker in [0, num_threads()), or -1 when the
  /// caller is not a thread of this pool. Lets per-thread state (e.g. one
  /// WwtEngine per worker) be indexed without locks.
  int CurrentWorkerIndex() const;

  /// Finishes every queued task, then stops the workers. Idempotent;
  /// called automatically by the destructor.
  void Shutdown();

  /// Hardware concurrency, always >= 1 (the portable default pool width).
  static int DefaultNumThreads();

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop(int worker_index);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(0), ..., fn(n-1) on the pool, keeping at most `concurrency`
/// (clamped to [1, pool->num_threads()]) invocations in flight; indices
/// are claimed dynamically so uneven task costs still balance. Blocks the
/// caller until every index finished. The first exception thrown by any
/// fn(i) is rethrown here (remaining indices may be skipped).
void ParallelFor(ThreadPool* pool, size_t n, int concurrency,
                 const std::function<void(size_t)>& fn);

}  // namespace wwt

#endif  // WWT_UTIL_THREAD_POOL_H_
