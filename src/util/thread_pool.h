// Copyright 2026 The WWT Authors
//
// Fixed-size worker pool over a FIFO task queue — the execution substrate
// of the batch query-serving layer (QueryRunner) and the parallel
// evaluation harness. Tasks are arbitrary callables submitted with
// Submit(); results and exceptions travel back through std::future.

#ifndef WWT_UTIL_THREAD_POOL_H_
#define WWT_UTIL_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace wwt {

/// A fixed set of worker threads draining a shared FIFO queue.
///
/// * Submit() never blocks (the queue is unbounded) and is safe from any
///   thread, including pool workers.
/// * Tasks submitted from one thread start in FIFO order; with more than
///   one worker they naturally run (and finish) concurrently.
/// * An exception thrown by a task is captured into its future and
///   rethrown by future::get() — workers never die from task exceptions.
/// * Shutdown() (implied by the destructor) drains every already-queued
///   task, then joins the workers.
/// * Submit() racing (or following) Shutdown() is well-defined: the task
///   is rejected and its future carries a std::runtime_error — the pool
///   never aborts the process over the race, and the caller finds out
///   the normal way, at future::get().
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Drains the queue and joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future for its result. On a pool that
  /// is shutting down (or already shut down) the task never runs and
  /// the future holds a std::runtime_error instead — see the class
  /// comment on the Submit/Shutdown race.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    // promise (not packaged_task) so a rejected task can carry an
    // explicit error; the shared_ptr around fn keeps the wrapper
    // copyable for std::function even when F is move-only.
    auto promise = std::make_shared<std::promise<R>>();
    auto bound = std::make_shared<std::decay_t<F>>(std::forward<F>(fn));
    std::future<R> future = promise->get_future();
    const bool accepted = Enqueue([promise, bound] {
      try {
        if constexpr (std::is_void_v<R>) {
          (*bound)();
          promise->set_value();
        } else {
          promise->set_value((*bound)());
        }
      } catch (...) {
        promise->set_exception(std::current_exception());
      }
    });
    if (!accepted) {
      promise->set_exception(std::make_exception_ptr(std::runtime_error(
          "ThreadPool::Submit on a shut-down pool: task rejected")));
    }
    return future;
  }

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Index of the calling worker in [0, num_threads()), or -1 when the
  /// caller is not a thread of this pool. Lets per-thread state (e.g. one
  /// WwtEngine per worker) be indexed without locks.
  int CurrentWorkerIndex() const;

  /// Finishes every queued task, then stops the workers. Idempotent;
  /// called automatically by the destructor.
  void Shutdown() WWT_EXCLUDES(mu_);

  /// Hardware concurrency, always >= 1 (the portable default pool width).
  static int DefaultNumThreads();

 private:
  /// Appends `task` to the queue unless the pool is stopping; returns
  /// whether the task was accepted.
  bool Enqueue(std::function<void()> task) WWT_EXCLUDES(mu_);
  void WorkerLoop(int worker_index) WWT_EXCLUDES(mu_);

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ WWT_GUARDED_BY(mu_);
  /// Set (once, irrevocably) by Shutdown; checked by every Enqueue under
  /// the same lock, which is what makes the Submit/Shutdown race safe.
  bool stopping_ WWT_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(0), ..., fn(n-1) on the pool, keeping at most `concurrency`
/// (clamped to [1, pool->num_threads()]) invocations in flight; indices
/// are claimed dynamically so uneven task costs still balance. Blocks the
/// caller until every index finished. The first exception thrown by any
/// fn(i) is rethrown here (remaining indices may be skipped).
void ParallelFor(ThreadPool* pool, size_t n, int concurrency,
                 const std::function<void(size_t)>& fn);

}  // namespace wwt

#endif  // WWT_UTIL_THREAD_POOL_H_
