#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace wwt {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  s_[0] = SplitMix64(&sm);
  s_[1] = SplitMix64(&sm);
  if (s_[0] == 0 && s_[1] == 0) s_[0] = 1;
}

uint64_t Random::Next() {
  uint64_t x = s_[0];
  const uint64_t y = s_[1];
  s_[0] = y;
  x ^= x << 23;
  s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s_[1] + y;
}

uint64_t Random::Uniform(uint64_t n) {
  WWT_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return v % n;
}

int64_t Random::UniformInt(int64_t lo, int64_t hi) {
  WWT_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Random::NextDouble() {
  // 53 high-quality mantissa bits.
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Random::Gaussian(double mean, double stddev) {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

uint64_t Random::Zipf(uint64_t n, double s) {
  WWT_CHECK(n > 0);
  if (s <= 0.0) return Uniform(n);
  // Inverse CDF by linear scan; n is small in corpus generation (< 1e4).
  double norm = 0.0;
  for (uint64_t i = 1; i <= n; ++i) norm += 1.0 / std::pow(double(i), s);
  double u = NextDouble() * norm;
  double acc = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(double(i), s);
    if (u <= acc) return i - 1;
  }
  return n - 1;
}

size_t Random::Categorical(const std::vector<double>& weights) {
  WWT_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += (w > 0 ? w : 0);
  if (total <= 0.0) return weights.size() - 1;
  double u = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0 ? weights[i] : 0);
    if (u <= acc) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Random::SampleWithoutReplacement(size_t n, size_t k) {
  if (k > n) k = n;
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  // Partial Fisher-Yates: only the first k swaps matter.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(Uniform(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Random Random::Fork() { return Random(Next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace wwt
