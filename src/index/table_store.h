// Copyright 2026 The WWT Authors
//
// TableStore: assigns ids and stores serialized tables. Reads go through
// the serialization layer so that query-time "read and parse the raw
// tables" cost (Fig. 7's table-read stages) is really paid. Optional file
// persistence round-trips the whole corpus.

#ifndef WWT_INDEX_TABLE_STORE_H_
#define WWT_INDEX_TABLE_STORE_H_

#include <string>
#include <vector>

#include "table/web_table.h"
#include "util/status.h"
#include "util/statusor.h"

namespace wwt {

class SnapshotCodec;

/// Append-only table storage keyed by dense TableId.
///
/// A store covers the contiguous id range [first_id(), end_id()): a full
/// corpus starts at 0, a CorpusSet shard at its partition offset, so
/// tables keep their global ids across sharding (answer digests and
/// cache keys never depend on which shard served them).
///
/// Thread safety: Get()/RecordSize() are pure reads with no hidden
/// mutable state (audited for the batch query runner) — safe from any
/// number of threads once building (Put/LoadFromFile) has finished.
/// Writes must not overlap reads.
class TableStore {
 public:
  /// Assigns the next id to `table` (overwriting table.id), serializes and
  /// stores it. Returns the assigned id.
  TableId Put(WebTable table);

  /// Deserializes table `id`. NotFound outside [first_id(), end_id()).
  StatusOr<WebTable> Get(TableId id) const;

  /// Bytes of the serialized record (for size accounting in benches).
  size_t RecordSize(TableId id) const;

  size_t size() const { return records_.size(); }

  /// First id held by this store (0 for a full corpus, the partition
  /// offset for a CorpusSet shard).
  TableId first_id() const { return first_id_; }
  /// One past the last id held by this store.
  TableId end_id() const {
    return first_id_ + static_cast<TableId>(records_.size());
  }

  /// Writes all records to `path` (atomic length-prefixed records).
  Status SaveToFile(const std::string& path) const;

  /// Replaces the store contents from a file written by SaveToFile.
  Status LoadFromFile(const std::string& path);

 private:
  /// Snapshot save/load and corpus partitioning (src/index/snapshot.cc)
  /// move records in and out without re-serializing each table.
  friend class SnapshotCodec;

  std::vector<std::string> records_;
  TableId first_id_ = 0;
};

}  // namespace wwt

#endif  // WWT_INDEX_TABLE_STORE_H_
