// Copyright 2026 The WWT Authors
//
// TableStore: assigns ids and stores serialized tables. Reads go through
// the serialization layer so that query-time "read and parse the raw
// tables" cost (Fig. 7's table-read stages) is really paid. Optional file
// persistence round-trips the whole corpus.
//
// Record bytes live behind a StoreSource: a heap vector while building
// (or after loading a materialized v2/v3 snapshot), or an offset-table
// view straight into a memory-mapped v4 snapshot — the zero-copy serve
// path. Everything above the store (engine, snapshot codec, sharding)
// reads records through the source interface and never sees which one
// it is.

#ifndef WWT_INDEX_TABLE_STORE_H_
#define WWT_INDEX_TABLE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "table/web_table.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/statusor.h"

namespace wwt {

class SnapshotCodec;

/// Read surface over a store's serialized records. Implementations:
/// VectorStoreSource (heap strings, build mode) and MappedStoreSource
/// (offset table + blob read in place from a snapshot mapping).
class StoreSource {
 public:
  virtual ~StoreSource() = default;

  virtual size_t size() const = 0;
  /// Serialized bytes of the record at position `pos` (0-based within
  /// this store, not a TableId). `pos` must be < size().
  virtual std::string_view record(size_t pos) const = 0;
  /// True when the records are served from a file mapping.
  virtual bool mapped() const = 0;
  /// Approximate heap bytes owned by this source.
  virtual size_t HeapBytes() const = 0;
};

/// Build-mode source: owns the record strings.
class VectorStoreSource final : public StoreSource {
 public:
  size_t size() const override { return records.size(); }
  std::string_view record(size_t pos) const override {
    return records[pos];
  }
  bool mapped() const override { return false; }
  size_t HeapBytes() const override {
    size_t bytes = records.capacity() * sizeof(std::string);
    for (const std::string& r : records) bytes += r.capacity();
    return bytes;
  }

  std::vector<std::string> records;
};

/// Zero-copy source: a `u64 offsets[count + 1]` table plus a blob, both
/// pointing into a snapshot mapping whose lifetime the owning Corpus
/// pins (`Corpus::mapping`). Offsets are validated monotone at load, so
/// record() can slice without rechecking.
class MappedStoreSource final : public StoreSource {
 public:
  size_t size() const override { return count; }
  std::string_view record(size_t pos) const override {
    return std::string_view(blob + offsets[pos],
                            offsets[pos + 1] - offsets[pos]);
  }
  bool mapped() const override { return true; }
  size_t HeapBytes() const override { return 0; }

  const uint64_t* offsets = nullptr;  // [count + 1], offsets[0] == 0
  const char* blob = nullptr;
  size_t count = 0;
};

/// Append-only table storage keyed by dense TableId.
///
/// A store covers the contiguous id range [first_id(), end_id()): a full
/// corpus starts at 0, a CorpusSet shard at its partition offset, so
/// tables keep their global ids across sharding (answer digests and
/// cache keys never depend on which shard served them).
///
/// Thread safety: Get()/RecordSize() are pure reads with no hidden
/// mutable state (audited for the batch query runner) — safe from any
/// number of threads once building (Put/LoadFromFile) has finished.
/// Writes must not overlap reads.
class TableStore {
 public:
  TableStore() {
    auto vec = std::make_unique<VectorStoreSource>();
    vec_ = vec.get();
    source_ = std::move(vec);
  }

  TableStore(TableStore&&) = default;
  TableStore& operator=(TableStore&&) = default;
  TableStore(const TableStore&) = delete;
  TableStore& operator=(const TableStore&) = delete;

  /// Assigns the next id to `table` (overwriting table.id), serializes and
  /// stores it. Returns the assigned id. Build mode only — a store
  /// serving a mapped snapshot is immutable.
  TableId Put(WebTable table);

  /// Deserializes table `id`. NotFound outside [first_id(), end_id()).
  StatusOr<WebTable> Get(TableId id) const;

  /// Bytes of the serialized record (for size accounting in benches).
  size_t RecordSize(TableId id) const;

  size_t size() const { return source_->size(); }

  /// First id held by this store (0 for a full corpus, the partition
  /// offset for a CorpusSet shard).
  TableId first_id() const { return first_id_; }
  /// One past the last id held by this store.
  TableId end_id() const {
    return first_id_ + static_cast<TableId>(source_->size());
  }

  /// True when records are served in place from a snapshot mapping.
  bool mapped() const { return source_->mapped(); }
  /// Approximate heap bytes owned by the record storage.
  size_t HeapBytes() const { return source_->HeapBytes(); }

  /// Writes all records to `path` (atomic length-prefixed records).
  Status SaveToFile(const std::string& path) const;

  /// Replaces the store contents from a file written by SaveToFile.
  Status LoadFromFile(const std::string& path);

 private:
  /// Snapshot save/load and corpus partitioning (src/index/snapshot.cc)
  /// move records in and out without re-serializing each table.
  friend class SnapshotCodec;

  /// The heap records, or a CHECK failure in mapped mode — every
  /// internal mutation path goes through this.
  std::vector<std::string>& MutableRecords() {
    WWT_CHECK(vec_ != nullptr) << "mapped TableStore is immutable";
    return vec_->records;
  }

  std::unique_ptr<StoreSource> source_;
  /// Non-null iff source_ is the heap VectorStoreSource (build mode).
  VectorStoreSource* vec_ = nullptr;
  TableId first_id_ = 0;
};

}  // namespace wwt

#endif  // WWT_INDEX_TABLE_STORE_H_
