#include "index/table_store.h"

#include <cstdio>
#include <memory>

namespace wwt {

TableId TableStore::Put(WebTable table) {
  const TableId id = end_id();
  table.id = id;
  MutableRecords().push_back(SerializeTable(table));
  return id;
}

StatusOr<WebTable> TableStore::Get(TableId id) const {
  if (id < first_id_ || id >= end_id()) {
    return Status::NotFound("table id ", id, " out of range [", first_id_,
                            ", ", end_id(), ")");
  }
  return DeserializeTable(source_->record(id - first_id_));
}

size_t TableStore::RecordSize(TableId id) const {
  return id >= first_id_ && id < end_id()
             ? source_->record(id - first_id_).size()
             : 0;
}

Status TableStore::SaveToFile(const std::string& path) const {
  std::unique_ptr<FILE, int (*)(FILE*)> f(std::fopen(path.c_str(), "wb"),
                                          &std::fclose);
  if (!f) return Status::IOError("cannot open '", path, "' for writing");
  uint64_t count = source_->size();
  if (std::fwrite(&count, sizeof(count), 1, f.get()) != 1) {
    return Status::IOError("short write to '", path, "'");
  }
  for (uint64_t i = 0; i < count; ++i) {
    const std::string_view rec = source_->record(i);
    uint64_t len = rec.size();
    if (std::fwrite(&len, sizeof(len), 1, f.get()) != 1 ||
        std::fwrite(rec.data(), 1, rec.size(), f.get()) != rec.size()) {
      return Status::IOError("short write to '", path, "'");
    }
  }
  return Status::OK();
}

Status TableStore::LoadFromFile(const std::string& path) {
  std::unique_ptr<FILE, int (*)(FILE*)> f(std::fopen(path.c_str(), "rb"),
                                          &std::fclose);
  if (!f) return Status::IOError("cannot open '", path, "' for reading");
  uint64_t count = 0;
  if (std::fread(&count, sizeof(count), 1, f.get()) != 1) {
    return Status::Corruption("truncated store header in '", path, "'");
  }
  if (count > (1ull << 32)) {
    return Status::Corruption("implausible record count ", count);
  }
  std::vector<std::string> records;
  records.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t len = 0;
    if (std::fread(&len, sizeof(len), 1, f.get()) != 1) {
      return Status::Corruption("truncated record header at index ", i);
    }
    if (len > (1ull << 31)) {
      return Status::Corruption("implausible record size ", len);
    }
    std::string rec(len, '\0');
    if (std::fread(rec.data(), 1, len, f.get()) != len) {
      return Status::Corruption("truncated record body at index ", i);
    }
    records.push_back(std::move(rec));
  }
  // LoadFromFile always lands in build mode (the legacy format has no
  // offset table to map), replacing whatever source was installed.
  auto vec = std::make_unique<VectorStoreSource>();
  vec->records = std::move(records);
  vec_ = vec.get();
  source_ = std::move(vec);
  first_id_ = 0;  // the file format predates shards: always a full corpus
  return Status::OK();
}

}  // namespace wwt
