// Copyright 2026 The WWT Authors
//
// The corpus-artifact layer between snapshots and serving: immutable,
// shareable handles over loaded corpora (CorpusHandle), sets of 1..N
// shard handles served as one atomically-swappable unit (CorpusSet),
// and the OpenCorpus facade that turns any artifact path — a plain
// `.wwtsnap` snapshot or a `.wwtset` manifest, sniffed by magic, never
// by extension — into a ready-to-serve CorpusSet with exactly one open
// + parse per file. WwtService, the tools and the benches all load
// through here; LoadSnapshot/LoadSetManifest stay available as the
// low-level single-artifact primitives.

#ifndef WWT_INDEX_CORPUS_SET_H_
#define WWT_INDEX_CORPUS_SET_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "corpus/corpus_generator.h"
#include "index/snapshot.h"
#include "index/table_index.h"
#include "index/table_store.h"
#include "util/statusor.h"

namespace wwt {

/// The remote-probe seam: one shard's index probe behind an interface,
/// so the engine's scatter-gather can route a shard's Search to a
/// worker process instead of the local TableIndex. Implementations must
/// return hits in Search's exact total order (score desc, id asc) with
/// bit-identical scores — the engine merges remote and local hits under
/// one contract (docs/DISTRIBUTED.md). Thread-safe: the engine probes
/// shards concurrently.
class ShardProbe {
 public:
  virtual ~ShardProbe() = default;

  /// The remote form of TableIndex::Search. `deadline` (max() = none)
  /// bounds the whole call including retries/hedges; errors are clean
  /// Statuses (DeadlineExceeded, IOError, Corruption, ...), never UB.
  [[nodiscard]] virtual StatusOr<std::vector<ScoredDoc>> Search(
      const std::vector<std::string>& keywords, int k, ProbeScorer scorer,
      std::chrono::steady_clock::time_point deadline) const = 0;
};

/// One shard of a serving corpus: the store/index pair the per-shard
/// probes run against. A single corpus is the 1-shard case. When
/// `probe` is set (borrowed, must outlive the engine), index probes for
/// this shard go through it instead of `index` — table reads and the
/// corpus statistics stay local either way.
struct CorpusShardRef {
  const TableStore* store = nullptr;
  const TableIndex* index = nullptr;
  const ShardProbe* probe = nullptr;
};

/// The freshness seam: a mutable-corpus view layered over the frozen
/// shards (implemented by fresh::DeltaView, see docs/FRESHNESS.md).
/// When the engine is given an overlay it (1) probes `index()` alongside
/// the frozen shards and merges under the usual (score desc, id asc)
/// contract, (2) drops frozen hits the overlay `Hides()` — superseded or
/// tombstoned table ids — after over-fetching `hidden_count()` extra
/// frozen hits so the merged top-k is exact, and (3) reads tables the
/// overlay `Contains()` from the overlay instead of the shard stores.
/// Implementations are immutable snapshots: every method is a pure read,
/// safe from any number of probe threads, and the overlay must outlive
/// the engine (a serving captures it shared_ptr-style like the set).
class CorpusOverlay {
 public:
  virtual ~CorpusOverlay() = default;

  /// The overlay's own index over its live tables (null when empty).
  /// Seeded/pinned against the base corpus so scores and term ids agree
  /// with a from-scratch rebuild (TableIndex::SeedVocabulary /
  /// InstallGlobalStats).
  virtual const TableIndex* index() const = 0;

  /// True when `id` is served by the overlay (added, updated or
  /// patched): reads must come from Read(), not the shard stores.
  virtual bool Contains(TableId id) const = 0;

  /// The overlay's copy of a table it Contains().
  [[nodiscard]] virtual StatusOr<WebTable> Read(TableId id) const = 0;

  /// True when a frozen hit for `id` must be dropped: the id was
  /// superseded (its live version is in the overlay) or tombstoned.
  virtual bool Hides(TableId id) const = 0;

  /// Number of ids Hides() is true for — the frozen over-fetch margin.
  virtual size_t hidden_count() const = 0;
};

/// One immutable, shareable corpus snapshot: store + index + vocab/idf
/// (inside Corpus), plus the content hash identifying the artifact it
/// came from. Handles are passed around as shared_ptr<const CorpusHandle>
/// so an atomic swap can retire a snapshot while in-flight requests
/// still hold it — and, for a zero-copy (v4) corpus, the handle keeps
/// the file mapping pinned (Corpus::mapping) for exactly as long.
class CorpusHandle {
 public:
  /// Takes ownership of a built corpus. `content_hash` is the snapshot
  /// artifact's hash (SnapshotInfo::content_hash); 0 = unversioned
  /// in-memory build, which gets a process-unique synthetic hash so two
  /// distinct corpora never share a fingerprint/cache key.
  static std::shared_ptr<const CorpusHandle> Own(Corpus corpus,
                                                 uint64_t content_hash = 0,
                                                 std::string source = "");

  /// Borrows a caller-owned corpus, which must outlive every service
  /// (and every in-flight request) holding the handle. Exactly like
  /// Own, `content_hash` 0 means an unversioned corpus and is remapped
  /// to a process-unique synthetic hash — two distinct borrowed corpora
  /// can never collide on a fingerprint/cache key.
  static std::shared_ptr<const CorpusHandle> Borrow(const Corpus* corpus,
                                                    uint64_t content_hash = 0);

  /// Loads a .wwtsnap artifact into an owning handle; the snapshot's
  /// content hash becomes the handle's. Clean Status on a missing or
  /// corrupt file.
  [[nodiscard]] static StatusOr<std::shared_ptr<const CorpusHandle>> Load(
      const std::string& path, SnapshotInfo* info = nullptr);

  /// Load from an already-open file — the single-open path: callers
  /// that sniffed the artifact themselves (OpenCorpus) hand the mapping
  /// over instead of paying a second open + header parse. `path` is
  /// recorded as the handle's source and used in error messages.
  [[nodiscard]] static StatusOr<std::shared_ptr<const CorpusHandle>> Load(
      serde::InputFile file, const std::string& path,
      SnapshotInfo* info = nullptr);

  const TableStore& store() const { return corpus_->store; }
  const TableIndex& index() const { return *corpus_->index; }
  const Corpus& corpus() const { return *corpus_; }
  uint64_t content_hash() const { return content_hash_; }
  /// The .wwtsnap path the handle was loaded from ("" otherwise).
  const std::string& source() const { return source_; }
  /// Snapshot format version the handle was loaded from; 0 for Own/
  /// Borrow of in-memory corpora.
  uint32_t format_version() const { return format_version_; }
  /// Bytes served straight from the pinned file mapping (the whole
  /// artifact for a zero-copy v4 corpus; 0 for materialized ones).
  uint64_t mapped_bytes() const;
  /// Heap bytes of the store + index (postings, scoring layout, vocab,
  /// df — near zero for a zero-copy corpus).
  uint64_t heap_bytes() const;

 private:
  CorpusHandle() = default;

  /// Set for Own/Load; Borrow leaves it empty and points corpus_ at the
  /// caller's object.
  std::unique_ptr<Corpus> owned_;
  const Corpus* corpus_ = nullptr;
  uint64_t content_hash_ = 0;
  std::string source_;
  uint32_t format_version_ = 0;
};

/// An immutable set of 1..N shard handles served as one corpus: the unit
/// SwapCorpus installs and a request captures at submission.
///
/// Thread safety: a built CorpusSet is deeply immutable — every member
/// is set once in Build/Load and only ever read afterwards — so it
/// carries no mutex and no WWT_GUARDED_BY annotations: concurrent reads
/// from any number of probe threads need no capability (the analysis
/// layer's equivalent of "const and means it"). The only write anywhere
/// near this class is the process-unique synthetic-hash counter in
/// corpus_set.cc, a std::atomic. Lifetime (not access) is what swap
/// safety is about, and that is the shared_ptr capture in WwtService. Shards
/// cover disjoint (sorted ascending) table-id ranges; every shard's
/// index carries the GLOBAL vocabulary/IDF computed before partitioning,
/// which is what makes the scatter-gathered answers byte-identical to a
/// single-index engine. content_hash() is the set-level hash — the
/// corpus component of every fingerprint/cache key — and for a 1-shard
/// set it equals the shard's own hash, so wrapping a plain snapshot
/// changes nothing about fingerprints or cached entries.
class CorpusSet {
 public:
  /// Wraps one handle as a 1-shard set (the plain-snapshot serving
  /// path). Set hash == handle hash, set source == handle source.
  static std::shared_ptr<const CorpusSet> FromHandle(
      std::shared_ptr<const CorpusHandle> shard);

  /// Builds a set over `shards` (non-empty, all non-null, disjoint store
  /// id ranges — WWT_CHECKed; shards are sorted by first id). The set
  /// hash is SetContentHash over the shard hashes in that order.
  static std::shared_ptr<const CorpusSet> Of(
      std::vector<std::shared_ptr<const CorpusHandle>> shards);

  /// Loads every shard of a `.wwtset` manifest (paths resolved relative
  /// to the manifest's directory). Each loaded shard's content hash must
  /// match the manifest entry — a rebuilt or swapped shard file is a
  /// clean Corruption error, never a silently mixed set. On success
  /// `manifest` (when non-null) receives the parsed manifest.
  [[nodiscard]] static StatusOr<std::shared_ptr<const CorpusSet>> Load(
      const std::string& manifest_path, SetManifest* manifest = nullptr);

  size_t num_shards() const { return shards_.size(); }
  const CorpusHandle& shard(size_t i) const { return *shards_[i]; }
  const std::shared_ptr<const CorpusHandle>& shard_handle(size_t i) const {
    return shards_[i];
  }
  /// The set-level content hash (for one shard, that shard's hash).
  uint64_t content_hash() const { return content_hash_; }
  /// The `.wwtset` path the set was loaded from, the wrapped handle's
  /// source for FromHandle, "" for Of.
  const std::string& source() const { return source_; }
  /// Total tables across all shards.
  uint64_t num_tables() const;
  /// The highest shard format_version (they match in any set written by
  /// wwt_indexer); 0 when the set serves in-memory corpora.
  uint32_t format_version() const;
  /// Mapped/heap byte totals across the shards — the operator-visible
  /// split between zero-copy and materialized serving state.
  uint64_t mapped_bytes() const;
  uint64_t heap_bytes() const;

  /// The corpus-wide statistics surface (global vocabulary/IDF; PMI^2
  /// doc-set probes union over the shards). For a 1-shard set this is
  /// the shard's TableIndex itself.
  const CorpusStats& stats() const;
  /// Borrowed store/index pairs in shard order — what a WwtEngine
  /// serves from. Valid while the set lives.
  const std::vector<CorpusShardRef>& shard_refs() const {
    return shard_refs_;
  }
  /// The resolved workload frozen into the corpus (every shard carries
  /// the full workload; shard 0's copy is returned).
  const std::vector<ResolvedQuery>& queries() const;

  ~CorpusSet();

 private:
  /// CorpusStats over >1 shards: global statistics from shard 0 (every
  /// shard's copy is identical), conjunctive doc sets unioned across
  /// shards — ranges are disjoint and ascending, so concatenation in
  /// shard order is already sorted.
  class ShardedStats;

  CorpusSet() = default;

  /// Shared core of Of/Load: validates, sorts and assembles the set.
  static std::shared_ptr<CorpusSet> Build(
      std::vector<std::shared_ptr<const CorpusHandle>> shards);

  std::vector<std::shared_ptr<const CorpusHandle>> shards_;
  std::vector<CorpusShardRef> shard_refs_;
  uint64_t content_hash_ = 0;
  std::string source_;
  /// Null for a 1-shard set (stats() forwards to the shard's index).
  std::unique_ptr<const ShardedStats> sharded_stats_;
};

/// What OpenCorpus resolved a path into.
struct OpenCorpusResult {
  /// The ready-to-serve set (1 shard for a plain snapshot).
  std::shared_ptr<const CorpusSet> corpus;
  /// For a snapshot: its SnapshotInfo. For a manifest: synthesized —
  /// format_version/content_hash are the SET's (manifest version, set
  /// hash), num_tables the total, num_terms the global vocabulary.
  SnapshotInfo info;
  /// True when `path` was a `.wwtset` manifest.
  bool is_set = false;
};

/// THE way to open a corpus artifact: opens `path`, sniffs the magic
/// (never the extension), and routes — a `.wwtsnap` snapshot loads
/// through the already-open mapping into a 1-shard set (one open, one
/// parse), a `.wwtset` manifest loads every shard (each a single
/// open + checksum; only the tiny manifest itself is re-read). Clean
/// Status on a missing file (IOError), unrecognized or damaged bytes
/// (Corruption), or a format version out of range (InvalidArgument).
[[nodiscard]] StatusOr<OpenCorpusResult> OpenCorpus(const std::string& path);

}  // namespace wwt

#endif  // WWT_INDEX_CORPUS_SET_H_
