#include "index/corpus_set.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <utility>

#include "util/hash.h"
#include "util/logging.h"

namespace wwt {

namespace {

/// Process-unique stand-in hash for corpora with no snapshot artifact:
/// two different in-memory corpora must never share a fingerprint/cache
/// key, even though neither has a real content hash. Not reproducible
/// across processes — snapshot-backed handles are, via the artifact's
/// checksum.
uint64_t SyntheticContentHash() {
  static std::atomic<uint64_t> counter{0};
  return HashCombine(Fnv1a("wwt-unversioned-corpus"), ++counter);
}

}  // namespace

// ----------------------------------------------------------- CorpusHandle

std::shared_ptr<const CorpusHandle> CorpusHandle::Own(Corpus corpus,
                                                      uint64_t content_hash,
                                                      std::string source) {
  auto handle = std::shared_ptr<CorpusHandle>(new CorpusHandle);
  handle->owned_ = std::make_unique<Corpus>(std::move(corpus));
  handle->corpus_ = handle->owned_.get();
  handle->content_hash_ =
      content_hash != 0 ? content_hash : SyntheticContentHash();
  handle->source_ = std::move(source);
  return handle;
}

std::shared_ptr<const CorpusHandle> CorpusHandle::Borrow(
    const Corpus* corpus, uint64_t content_hash) {
  auto handle = std::shared_ptr<CorpusHandle>(new CorpusHandle);
  handle->corpus_ = corpus;
  // The same synthetic-hash remap as Own: a borrowed unversioned corpus
  // must not collide with any other corpus on fingerprints/cache keys.
  handle->content_hash_ =
      content_hash != 0 ? content_hash : SyntheticContentHash();
  return handle;
}

StatusOr<std::shared_ptr<const CorpusHandle>> CorpusHandle::Load(
    const std::string& path, SnapshotInfo* info) {
  WWT_ASSIGN_OR_RETURN(serde::InputFile file, serde::InputFile::Open(path));
  return Load(std::move(file), path, info);
}

StatusOr<std::shared_ptr<const CorpusHandle>> CorpusHandle::Load(
    serde::InputFile file, const std::string& path, SnapshotInfo* info) {
  SnapshotInfo local;
  StatusOr<Corpus> corpus = LoadSnapshot(std::move(file), path, &local);
  if (!corpus.ok()) return corpus.status();
  if (info != nullptr) *info = local;
  auto handle = std::shared_ptr<CorpusHandle>(new CorpusHandle);
  handle->owned_ = std::make_unique<Corpus>(std::move(corpus).value());
  handle->corpus_ = handle->owned_.get();
  handle->content_hash_ = local.content_hash != 0 ? local.content_hash
                                                  : SyntheticContentHash();
  handle->source_ = path;
  handle->format_version_ = local.format_version;
  return std::shared_ptr<const CorpusHandle>(std::move(handle));
}

uint64_t CorpusHandle::mapped_bytes() const {
  return corpus_->mapping != nullptr ? corpus_->mapping->size() : 0;
}

uint64_t CorpusHandle::heap_bytes() const {
  return corpus_->store.HeapBytes() + corpus_->index->HeapBytes();
}

// -------------------------------------------------------------- CorpusSet

/// The >1-shard CorpusStats implementation. Global statistics are read
/// from shard 0 — every shard of a partitioned corpus carries an
/// identical copy — and the conjunctive doc-set probes union over the
/// shards. Ranges are disjoint and ascending (CorpusSet::Of sorts and
/// checks), so per-shard sorted results concatenate into one sorted
/// vector, exactly what the full index would have returned.
class CorpusSet::ShardedStats : public CorpusStats {
 public:
  explicit ShardedStats(const CorpusSet* set) : set_(set) {}

  const Tokenizer& tokenizer() const override {
    return set_->shard(0).index().tokenizer();
  }
  const Vocabulary& vocab() const override {
    return set_->shard(0).index().vocab();
  }
  const IdfDictionary& idf() const override {
    return set_->shard(0).index().idf();
  }
  size_t num_docs() const override {
    size_t total = 0;
    for (size_t s = 0; s < set_->num_shards(); ++s) {
      total += set_->shard(s).index().num_docs();
    }
    return total;
  }

  std::vector<TableId> MatchAllInHeaderOrContext(
      const std::vector<std::string>& keywords) const override {
    std::vector<TableId> out;
    for (size_t s = 0; s < set_->num_shards(); ++s) {
      std::vector<TableId> docs =
          set_->shard(s).index().MatchAllInHeaderOrContext(keywords);
      out.insert(out.end(), docs.begin(), docs.end());
    }
    return out;
  }

  std::vector<TableId> MatchAllInContent(
      const std::vector<std::string>& keywords) const override {
    std::vector<TableId> out;
    for (size_t s = 0; s < set_->num_shards(); ++s) {
      std::vector<TableId> docs =
          set_->shard(s).index().MatchAllInContent(keywords);
      out.insert(out.end(), docs.begin(), docs.end());
    }
    return out;
  }

 private:
  const CorpusSet* set_;
};

CorpusSet::~CorpusSet() = default;

std::shared_ptr<const CorpusSet> CorpusSet::FromHandle(
    std::shared_ptr<const CorpusHandle> shard) {
  WWT_CHECK(shard != nullptr) << "FromHandle needs a handle";
  auto set = std::shared_ptr<CorpusSet>(new CorpusSet);
  set->content_hash_ = shard->content_hash();
  set->source_ = shard->source();
  set->shard_refs_.push_back({&shard->store(), &shard->index()});
  set->shards_.push_back(std::move(shard));
  return set;
}

std::shared_ptr<const CorpusSet> CorpusSet::Of(
    std::vector<std::shared_ptr<const CorpusHandle>> shards) {
  return Build(std::move(shards));
}

std::shared_ptr<CorpusSet> CorpusSet::Build(
    std::vector<std::shared_ptr<const CorpusHandle>> shards) {
  WWT_CHECK(!shards.empty()) << "a CorpusSet needs at least one shard";
  for (const auto& shard : shards) {
    WWT_CHECK(shard != nullptr) << "CorpusSet shards must be non-null";
  }
  std::sort(shards.begin(), shards.end(),
            [](const std::shared_ptr<const CorpusHandle>& a,
               const std::shared_ptr<const CorpusHandle>& b) {
              return a->store().first_id() < b->store().first_id();
            });
  for (size_t s = 1; s < shards.size(); ++s) {
    WWT_CHECK(shards[s]->store().first_id() >=
              shards[s - 1]->store().end_id())
        << "CorpusSet shards must cover disjoint table-id ranges";
  }

  auto set = std::shared_ptr<CorpusSet>(new CorpusSet);
  std::vector<uint64_t> hashes;
  hashes.reserve(shards.size());
  for (const auto& shard : shards) {
    hashes.push_back(shard->content_hash());
    set->shard_refs_.push_back({&shard->store(), &shard->index()});
  }
  set->content_hash_ = SetContentHash(hashes);
  set->shards_ = std::move(shards);
  if (set->shards_.size() > 1) {
    set->sharded_stats_ = std::make_unique<const ShardedStats>(set.get());
  }
  return set;
}

StatusOr<std::shared_ptr<const CorpusSet>> CorpusSet::Load(
    const std::string& manifest_path, SetManifest* manifest) {
  WWT_ASSIGN_OR_RETURN(SetManifest m, LoadSetManifest(manifest_path));
  std::vector<std::shared_ptr<const CorpusHandle>> shards;
  shards.reserve(m.shards.size());
  for (const ShardManifestEntry& entry : m.shards) {
    const std::string path = ResolveShardPath(manifest_path, entry.file);
    WWT_ASSIGN_OR_RETURN(std::shared_ptr<const CorpusHandle> shard,
                         CorpusHandle::Load(path));
    if (shard->content_hash() != entry.content_hash) {
      return Status::Corruption(
          "shard '", path, "' does not match the manifest (the file was ",
          "rebuilt or replaced) — re-run wwt_indexer --shards");
    }
    if (shard->store().first_id() != entry.first_table_id ||
        shard->store().size() != entry.num_tables) {
      return Status::Corruption("shard '", path,
                                "' id range disagrees with the manifest");
    }
    shards.push_back(std::move(shard));
  }
  // Build() recomputes the set hash from the shard hashes; the
  // manifest's own consistency (set_hash vs entries) was verified by
  // LoadSetManifest, and the per-shard hashes above tie the files to
  // the entries — so the two always agree here.
  std::shared_ptr<CorpusSet> set = Build(std::move(shards));
  set->source_ = manifest_path;
  if (manifest != nullptr) *manifest = std::move(m);
  return std::shared_ptr<const CorpusSet>(std::move(set));
}

uint64_t CorpusSet::num_tables() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->store().size();
  return total;
}

uint32_t CorpusSet::format_version() const {
  uint32_t version = 0;
  for (const auto& shard : shards_) {
    version = std::max(version, shard->format_version());
  }
  return version;
}

uint64_t CorpusSet::mapped_bytes() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->mapped_bytes();
  return total;
}

uint64_t CorpusSet::heap_bytes() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->heap_bytes();
  return total;
}

const CorpusStats& CorpusSet::stats() const {
  return sharded_stats_ != nullptr
             ? static_cast<const CorpusStats&>(*sharded_stats_)
             : shards_[0]->index();
}

const std::vector<ResolvedQuery>& CorpusSet::queries() const {
  return shards_[0]->corpus().queries;
}

// ------------------------------------------------------------- OpenCorpus

StatusOr<OpenCorpusResult> OpenCorpus(const std::string& path) {
  WWT_ASSIGN_OR_RETURN(serde::InputFile file, serde::InputFile::Open(path));
  const std::string_view head = file.data();
  if (head.size() >= sizeof(kSetMagic) &&
      std::memcmp(head.data(), kSetMagic, sizeof(kSetMagic)) == 0) {
    OpenCorpusResult result;
    result.is_set = true;
    SetManifest manifest;
    WWT_ASSIGN_OR_RETURN(result.corpus,
                         CorpusSet::Load(path, &manifest));
    result.info.format_version = manifest.format_version;
    result.info.content_hash = manifest.set_hash;
    result.info.file_bytes = file.size();
    result.info.seed = manifest.seed;
    result.info.scale = manifest.scale;
    result.info.noise_pages = manifest.noise_pages;
    result.info.workload_hash = manifest.workload_hash;
    result.info.num_tables = manifest.num_tables;
    result.info.num_queries = result.corpus->queries().size();
    result.info.num_terms = result.corpus->stats().vocab().size();
    return result;
  }
  // Anything else is a snapshot (or garbage — LoadSnapshot's header
  // checks own the error message); hand the open mapping through.
  OpenCorpusResult result;
  WWT_ASSIGN_OR_RETURN(std::shared_ptr<const CorpusHandle> handle,
                       CorpusHandle::Load(std::move(file), path,
                                          &result.info));
  result.corpus = CorpusSet::FromHandle(std::move(handle));
  return result;
}

}  // namespace wwt
