#include "index/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "util/hash.h"
#include "util/logging.h"
#include "util/serde.h"
#include "util/timer.h"

namespace wwt {

namespace {

/// Section tags (ASCII fourcc, little-endian). Unknown tags are skipped
/// on load so new sections can be appended without a version bump;
/// changing the LAYOUT of an existing section bumps
/// kSnapshotFormatVersion instead.
constexpr uint32_t SectionTag(char a, char b, char c, char d) {
  return static_cast<uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(d)) << 24;
}

constexpr uint32_t kSecMeta = SectionTag('M', 'E', 'T', 'A');
constexpr uint32_t kSecStore = SectionTag('S', 'T', 'O', 'R');
constexpr uint32_t kSecIndex = SectionTag('I', 'N', 'D', 'X');
constexpr uint32_t kSecTruth = SectionTag('T', 'R', 'T', 'H');
constexpr uint32_t kSecQueries = SectionTag('Q', 'R', 'Y', 'S');
constexpr uint32_t kSecHarvest = SectionTag('H', 'S', 'T', 'S');

/// Fixed file header: magic + version + flags + payload size + checksum.
constexpr size_t kHeaderBytes = 8 + 4 + 4 + 8 + 8;

/// Sections are written in place: tag + a reserved u64 size slot,
/// patched once the body is appended (no per-section buffering).
size_t BeginSection(uint32_t tag, serde::Writer* w) {
  w->WriteU32(tag);
  w->WriteU64(0);  // size slot
  return w->size();
}

void EndSection(size_t body_start, serde::Writer* w) {
  w->PatchU64(body_start - sizeof(uint64_t), w->size() - body_start);
}

/// Validates a zero-copy offset table read in place from a v4 mapping:
/// offsets[0] == 0 and monotone non-decreasing, so every derived
/// [offsets[i], offsets[i+1]) slice is a valid subrange of a blob of
/// `offsets[n]` bytes. Returns the blob size through `total`.
Status ValidateOffsets(const uint64_t* offsets, uint64_t n, const char* what,
                       uint64_t* total) {
  if (offsets[0] != 0) {
    return Status::Corruption(what, " offset table does not start at 0");
  }
  for (uint64_t i = 0; i < n; ++i) {
    if (offsets[i + 1] < offsets[i]) {
      return Status::Corruption(what, " offset table is not monotone at entry ",
                                i + 1);
    }
  }
  *total = offsets[n];
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// SnapshotCodec: the one place allowed to touch the private state of
// TableStore / TableIndex / IdfDictionary (befriended by each).

class SnapshotCodec {
 public:
  // ----- TableStore. v2/v3: length-prefixed record strings. v4: an
  // aligned `u64 offsets[count + 1]` table + one record blob, read in
  // place from the mapping on load.
  static void WriteStore(const TableStore& store, uint32_t format_version,
                         serde::Writer* w) {
    const StoreSource& src = *store.source_;
    w->WriteU64(store.first_id_);
    w->WriteU64(src.size());
    if (format_version < 4) {
      for (size_t i = 0; i < src.size(); ++i) w->WriteString(src.record(i));
      return;
    }
    w->AlignTo(8, kHeaderBytes);
    uint64_t off = 0;
    for (size_t i = 0; i < src.size(); ++i) {
      w->WriteU64(off);
      off += src.record(i).size();
    }
    w->WriteU64(off);
    for (size_t i = 0; i < src.size(); ++i) {
      const std::string_view rec = src.record(i);
      w->WriteBytes(rec.data(), rec.size());
    }
  }

  static Status ReadStore(serde::Reader* r, uint32_t format_version,
                          size_t base, TableStore* store) {
    uint64_t first_id, count;
    WWT_RETURN_NOT_OK(r->ReadU64(&first_id));
    WWT_RETURN_NOT_OK(r->ReadU64(&count));
    WWT_RETURN_NOT_OK(r->CheckCount(count, format_version < 4 ? 8 : 1));
    if (first_id > UINT32_MAX || count > UINT32_MAX - first_id) {
      return Status::Corruption("store id range starting at ", first_id,
                                " with ", count, " records exceeds TableId");
    }
    if (format_version < 4) {
      std::vector<std::string> records;
      records.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        std::string rec;
        WWT_RETURN_NOT_OK(r->ReadString(&rec));
        records.push_back(std::move(rec));
      }
      store->MutableRecords() = std::move(records);
      store->first_id_ = static_cast<TableId>(first_id);
      return Status::OK();
    }
    WWT_RETURN_NOT_OK(r->AlignTo(8, base));
    const char* raw;
    WWT_RETURN_NOT_OK(r->ReadRaw(count + 1, sizeof(uint64_t), &raw));
    auto src = std::make_unique<MappedStoreSource>();
    src->offsets = reinterpret_cast<const uint64_t*>(raw);
    uint64_t blob_size;
    WWT_RETURN_NOT_OK(
        ValidateOffsets(src->offsets, count, "store record", &blob_size));
    WWT_RETURN_NOT_OK(r->ReadRaw(blob_size, 1, &src->blob));
    src->count = static_cast<size_t>(count);
    store->vec_ = nullptr;
    store->source_ = std::move(src);
    store->first_id_ = static_cast<TableId>(first_id);
    return Status::OK();
  }

  // ----- Corpus partitioning (the `wwt_indexer --shards` primitive).
  /// One shard corpus over the contiguous id range [begin, end): its
  /// slice of the store records and ground truth, a per-shard index
  /// rebuilt over exactly those tables but carrying the GLOBAL
  /// vocabulary and IDF statistics (so per-shard retrieval scores are
  /// bit-identical to the full index's), and the full resolved
  /// workload. `kb` stays null — serving never consults it.
  static Corpus BuildShard(const Corpus& full, TableId begin, TableId end) {
    Corpus shard;
    // record() copies work from both heap and mapped source stores, so a
    // zero-copy corpus can be re-partitioned without a rebuild.
    std::vector<std::string>& records = shard.store.MutableRecords();
    records.reserve(end - begin);
    for (TableId id = begin; id < end; ++id) {
      records.emplace_back(full.store.source_->record(id - full.store.first_id_));
    }
    shard.store.first_id_ = begin;

    const TableIndex& full_index = *full.index;
    shard.index = std::make_unique<TableIndex>(
        full_index.options(), full_index.tokenizer().options());
    // Pre-seeding the global vocabulary makes every Add() intern to the
    // same term ids as the full index; the local IDF counts accumulated
    // by Add() are then replaced by the global statistics. (The same
    // seed-add-pin idiom builds the freshness delta index and the merged
    // corpus — src/fresh/.)
    shard.index->SeedVocabulary(full_index.vocab());
    for (TableId id = begin; id < end; ++id) {
      StatusOr<WebTable> table = shard.store.Get(id);
      WWT_CHECK(table.ok()) << "unreadable table " << id
                            << " while sharding: "
                            << table.status().ToString();
      shard.index->Add(*table);
    }
    shard.index->InstallGlobalStats(full_index.idf());

    for (const auto& [id, truth] : full.truth) {
      if (id >= begin && id < end) shard.truth.emplace(id, truth);
    }
    shard.queries = full.queries;
    shard.harvest_stats = full.harvest_stats;
    return shard;
  }

  // ----- TableIndex: options, vocabulary, idf, postings, field stats,
  // and (v3+) the merged block-max scoring layout. v4 swaps the
  // per-element encodings for aligned offset tables + raw arrays the
  // loader reads in place.
  static Status WriteIndex(const TableIndex& index, uint32_t format_version,
                           serde::Writer* w) {
    if (format_version < 4 && index.heap_ == nullptr) {
      // The v4 layout drops term frequencies and field lengths (they are
      // baked into the precomputed scores), so a zero-copy corpus cannot
      // be downgraded to the materialized formats.
      return Status::InvalidArgument(
          "cannot write a v", format_version,
          " snapshot from a zero-copy (v4) corpus: term frequencies and "
          "field lengths are not retained — save at v4 or rebuild from "
          "source");
    }
    const IndexOptions& opt = index.options_;
    for (double boost : opt.boosts) w->WriteDouble(boost);
    w->WriteU8(opt.drop_query_stopwords ? 1 : 0);

    const TokenizerOptions& tok = index.tokenizer_.options();
    w->WriteU8(tok.lowercase ? 1 : 0);
    w->WriteU8(tok.strip_possessive ? 1 : 0);
    w->WriteU8(tok.stem_plurals ? 1 : 0);
    w->WriteU8(tok.drop_stopwords ? 1 : 0);
    w->WriteU64(tok.min_token_length);

    if (format_version >= 4) return WriteIndexV4(index, w);

    const Vocabulary& vocab = index.vocab_;
    w->WriteU64(vocab.size());
    for (TermId t = 0; t < vocab.size(); ++t) w->WriteString(vocab.Term(t));

    const IdfDictionary& idf = index.idf_;
    w->WriteU32(idf.num_docs_);
    w->WriteU64(idf.df_.size());
    for (uint32_t df : idf.df_) w->WriteU32(df);

    w->WriteU64(index.doc_count_);
    for (int f = 0; f < kNumFields; ++f) {
      const auto& lens = index.heap_->field_len[f];
      w->WriteU64(lens.size());
      for (uint32_t len : lens) w->WriteU32(len);

      const auto& field_postings = index.heap_->postings[f];
      w->WriteU64(field_postings.size());
      for (const auto& plist : field_postings) {
        w->WriteU64(plist.size());
        for (const Posting& p : plist) {
          w->WriteU32(p.doc);
          w->WriteFloat(p.tf);
        }
      }
    }

    if (format_version >= 3) {
      // v3 tail: the merged scoring layout's primary arrays (block size
      // + per-term doc/score CSR). Block boundaries, block maxima and
      // term maxima are cheap one-pass derivations, so the loader
      // recomputes them — a corrupt-but-checksummed max can then never
      // desynchronize WAND pruning from the stored scores.
      index.EnsureScoringLayout();
      const TableIndex::ScoringLayout& layout = index.scoring_;
      w->WriteU32(layout.block_size);
      const uint64_t nterms =
          layout.offsets.empty() ? 0 : layout.offsets.size() - 1;
      w->WriteU64(nterms);
      for (uint64_t t = 0; t < nterms; ++t) {
        const uint64_t begin = layout.offsets[t];
        const uint64_t end = layout.offsets[t + 1];
        w->WriteU64(end - begin);
        for (uint64_t i = begin; i < end; ++i) w->WriteU32(layout.docs[i]);
        for (uint64_t i = begin; i < end; ++i) {
          w->WriteDouble(layout.scores[i]);
        }
      }
    }
    return Status::OK();
  }

  /// The v4 INDX body. Written through the read surfaces (Term(),
  /// DocFreq(), AppendDocs(), the scoring view), so it works identically
  /// from a heap-built corpus and from an already-mapped one
  /// (re-saving / repartitioning a v4 file). Every raw array is
  /// preceded by a Writer::AlignTo(8) marker; the doubles the scorers
  /// consume are stored as the exact bit patterns the builder produced,
  /// which is what makes v3 and v4 serving byte-identical.
  static Status WriteIndexV4(const TableIndex& index, serde::Writer* w) {
    const Vocabulary& vocab = index.vocab_;
    const uint64_t nterms = vocab.size();
    w->WriteU64(nterms);
    w->WriteU64(index.doc_count_);
    w->WriteU32(index.idf_.num_docs());

    // Vocabulary: offsets + lexicographic search permutation + blob.
    w->AlignTo(8, kHeaderBytes);
    uint64_t off = 0;
    for (TermId t = 0; t < nterms; ++t) {
      w->WriteU64(off);
      off += vocab.Term(t).size();
    }
    w->WriteU64(off);
    std::vector<uint32_t> perm(nterms);
    for (uint64_t i = 0; i < nterms; ++i) perm[i] = static_cast<uint32_t>(i);
    std::sort(perm.begin(), perm.end(), [&vocab](uint32_t a, uint32_t b) {
      return vocab.Term(a) < vocab.Term(b);
    });
    w->AlignTo(8, kHeaderBytes);
    for (uint32_t p : perm) w->WriteU32(p);
    for (TermId t = 0; t < nterms; ++t) {
      const std::string_view term = vocab.Term(t);
      w->WriteBytes(term.data(), term.size());
    }

    // IDF document frequencies, one entry per term.
    w->AlignTo(8, kHeaderBytes);
    for (TermId t = 0; t < nterms; ++t) w->WriteU32(index.idf_.DocFreq(t));

    // Per-field conjunctive postings: docs only (first id absolute,
    // then gaps), varint-compressed, behind a byte-offset table.
    std::vector<TableId> docs;
    for (int f = 0; f < kNumFields; ++f) {
      serde::Writer blob;
      std::vector<uint64_t> offsets;
      offsets.reserve(nterms + 1);
      offsets.push_back(0);
      for (TermId t = 0; t < nterms; ++t) {
        docs.clear();
        index.postings_->AppendDocs(f, t, &docs);
        TableId prev = 0;
        bool first = true;
        for (TableId d : docs) {
          blob.WriteVarint(first ? d : d - prev);
          prev = d;
          first = false;
        }
        offsets.push_back(blob.size());
      }
      w->AlignTo(8, kHeaderBytes);
      for (uint64_t o : offsets) w->WriteU64(o);
      w->WriteBytes(blob.buffer().data(), blob.size());
    }

    // The full merged scoring layout, block metadata included — the
    // loader installs a view, it never recomputes.
    index.EnsureScoringLayout();
    const ScoringView view = index.ViewOfScoring();
    WWT_CHECK(view.num_terms == nterms)
        << "scoring layout and vocabulary disagree";
    const uint64_t npost = view.offsets[nterms];
    const uint64_t nblocks = view.block_offsets[nterms];
    w->WriteU32(view.block_size);
    w->WriteU64(npost);
    w->WriteU64(nblocks);
    w->AlignTo(8, kHeaderBytes);
    for (uint64_t t = 0; t <= nterms; ++t) w->WriteU64(view.offsets[t]);
    w->AlignTo(8, kHeaderBytes);
    for (uint64_t i = 0; i < npost; ++i) w->WriteU32(view.docs[i]);
    w->AlignTo(8, kHeaderBytes);
    for (uint64_t i = 0; i < npost; ++i) w->WriteDouble(view.scores[i]);
    w->AlignTo(8, kHeaderBytes);
    for (uint64_t t = 0; t <= nterms; ++t) w->WriteU64(view.block_offsets[t]);
    w->AlignTo(8, kHeaderBytes);
    for (uint64_t i = 0; i < nblocks; ++i) w->WriteU32(view.block_last[i]);
    w->AlignTo(8, kHeaderBytes);
    for (uint64_t i = 0; i < nblocks; ++i) w->WriteDouble(view.block_max[i]);
    w->AlignTo(8, kHeaderBytes);
    for (uint64_t t = 0; t < nterms; ++t) w->WriteDouble(view.term_max[t]);
    return Status::OK();
  }

  static Status ReadIndex(serde::Reader* r, uint32_t format_version,
                          size_t base, std::unique_ptr<TableIndex>* out) {
    IndexOptions opt;
    for (double& boost : opt.boosts) WWT_RETURN_NOT_OK(r->ReadDouble(&boost));
    uint8_t flag;
    WWT_RETURN_NOT_OK(r->ReadU8(&flag));
    opt.drop_query_stopwords = flag != 0;

    TokenizerOptions tok;
    WWT_RETURN_NOT_OK(r->ReadU8(&flag));
    tok.lowercase = flag != 0;
    WWT_RETURN_NOT_OK(r->ReadU8(&flag));
    tok.strip_possessive = flag != 0;
    WWT_RETURN_NOT_OK(r->ReadU8(&flag));
    tok.stem_plurals = flag != 0;
    WWT_RETURN_NOT_OK(r->ReadU8(&flag));
    tok.drop_stopwords = flag != 0;
    uint64_t min_len;
    WWT_RETURN_NOT_OK(r->ReadU64(&min_len));
    tok.min_token_length = static_cast<size_t>(min_len);

    if (format_version >= 4) return ReadIndexV4(r, base, opt, tok, out);

    auto index = std::make_unique<TableIndex>(opt, tok);

    uint64_t vocab_size;
    WWT_RETURN_NOT_OK(r->ReadU64(&vocab_size));
    WWT_RETURN_NOT_OK(r->CheckCount(vocab_size, 8));
    std::string term;
    for (uint64_t t = 0; t < vocab_size; ++t) {
      WWT_RETURN_NOT_OK(r->ReadString(&term));
      const TermId id = index->vocab_.Intern(term);
      if (id != t) {
        return Status::Corruption("duplicate vocabulary term '", term,
                                  "' at id ", t);
      }
    }

    WWT_RETURN_NOT_OK(r->ReadU32(&index->idf_.num_docs_));
    uint64_t df_size;
    WWT_RETURN_NOT_OK(r->ReadU64(&df_size));
    WWT_RETURN_NOT_OK(r->CheckCount(df_size, 4));
    index->idf_.df_.resize(df_size);
    for (uint64_t i = 0; i < df_size; ++i) {
      WWT_RETURN_NOT_OK(r->ReadU32(&index->idf_.df_[i]));
    }

    uint64_t doc_count;
    WWT_RETURN_NOT_OK(r->ReadU64(&doc_count));
    index->doc_count_ = static_cast<size_t>(doc_count);

    for (int f = 0; f < kNumFields; ++f) {
      uint64_t num_lens;
      WWT_RETURN_NOT_OK(r->ReadU64(&num_lens));
      WWT_RETURN_NOT_OK(r->CheckCount(num_lens, 4));
      auto& lens = index->heap_->field_len[f];
      lens.resize(num_lens);
      for (uint64_t i = 0; i < num_lens; ++i) {
        WWT_RETURN_NOT_OK(r->ReadU32(&lens[i]));
      }

      uint64_t num_terms;
      WWT_RETURN_NOT_OK(r->ReadU64(&num_terms));
      WWT_RETURN_NOT_OK(r->CheckCount(num_terms, 8));
      auto& field_postings = index->heap_->postings[f];
      field_postings.resize(num_terms);
      for (uint64_t t = 0; t < num_terms; ++t) {
        uint64_t plist_size;
        WWT_RETURN_NOT_OK(r->ReadU64(&plist_size));
        WWT_RETURN_NOT_OK(r->CheckCount(plist_size, 8));
        auto& plist = field_postings[t];
        plist.resize(plist_size);
        for (uint64_t i = 0; i < plist_size; ++i) {
          WWT_RETURN_NOT_OK(r->ReadU32(&plist[i].doc));
          WWT_RETURN_NOT_OK(r->ReadFloat(&plist[i].tf));
          // Search() indexes field_len_[f][doc] without a bounds check
          // (a build-time invariant), so a checksum-valid but
          // inconsistent file must be rejected here, not crash there.
          if (plist[i].doc >= num_lens) {
            return Status::Corruption("posting doc id ", plist[i].doc,
                                      " out of range (field ", f, " has ",
                                      num_lens, " docs)");
          }
          if (i > 0 && plist[i].doc <= plist[i - 1].doc) {
            return Status::Corruption(
                "postings for term ", t, " in field ", f,
                " are not strictly ascending by doc id");
          }
        }
      }
    }

    if (format_version >= 3) {
      uint64_t num_docs_bound = 0;
      for (int f = 0; f < kNumFields; ++f) {
        num_docs_bound = std::max<uint64_t>(
            num_docs_bound, index->heap_->field_len[f].size());
      }
      TableIndex::ScoringLayout layout;
      uint32_t block_size;
      WWT_RETURN_NOT_OK(r->ReadU32(&block_size));
      if (block_size == 0) {
        return Status::Corruption("scoring layout block size is 0");
      }
      layout.block_size = block_size;
      uint64_t nterms;
      WWT_RETURN_NOT_OK(r->ReadU64(&nterms));
      if (nterms != index->vocab_.size()) {
        return Status::Corruption("scoring layout covers ", nterms,
                                  " terms, vocabulary has ",
                                  index->vocab_.size());
      }
      layout.offsets.reserve(nterms + 1);
      layout.offsets.push_back(0);
      for (uint64_t t = 0; t < nterms; ++t) {
        uint64_t count;
        WWT_RETURN_NOT_OK(r->ReadU64(&count));
        WWT_RETURN_NOT_OK(r->CheckCount(count, 12));
        for (uint64_t i = 0; i < count; ++i) {
          TableId doc;
          WWT_RETURN_NOT_OK(r->ReadU32(&doc));
          // SearchWand() trusts ascending order for its skips and the
          // doc ids feed table reads downstream — reject inconsistent
          // (if checksum-valid) files here rather than misbehave there.
          if (doc >= num_docs_bound) {
            return Status::Corruption("scoring layout doc id ", doc,
                                      " out of range (", num_docs_bound,
                                      " docs)");
          }
          if (i > 0 && doc <= layout.docs.back()) {
            return Status::Corruption(
                "scoring layout postings for term ", t,
                " are not strictly ascending by doc id");
          }
          layout.docs.push_back(doc);
        }
        for (uint64_t i = 0; i < count; ++i) {
          double score;
          WWT_RETURN_NOT_OK(r->ReadDouble(&score));
          layout.scores.push_back(score);
        }
        layout.offsets.push_back(layout.docs.size());
      }
      TableIndex::FinishScoringLayout(&layout);
      index->scoring_ = std::move(layout);
      index->scoring_ready_.store(true, std::memory_order_release);
    }

    *out = std::move(index);
    return Status::OK();
  }

  /// The v4 INDX body: installs mapped views (vocabulary, df table,
  /// postings, scoring layout) pointing straight into the file mapping.
  /// Validation is O(#terms) STRUCTURAL — offset tables monotone and
  /// in-bounds, permutation entries in range, block counts consistent —
  /// which is exactly what the probe loops and view slicing rely on for
  /// memory safety. Payload VALUES (doc ids inside blobs, scores) are
  /// not audited: a tampered v4 file can serve wrong answers, never an
  /// out-of-bounds read (store lookups bounds-check, WAND only compares
  /// doc values). `base` is the section body's absolute file offset, the
  /// anchor the AlignTo markers are verified against.
  static Status ReadIndexV4(serde::Reader* r, size_t base,
                            const IndexOptions& opt,
                            const TokenizerOptions& tok,
                            std::unique_ptr<TableIndex>* out) {
    auto index = std::make_unique<TableIndex>(opt, tok);
    uint64_t nterms, doc_count;
    uint32_t idf_docs;
    WWT_RETURN_NOT_OK(r->ReadU64(&nterms));
    WWT_RETURN_NOT_OK(r->ReadU64(&doc_count));
    WWT_RETURN_NOT_OK(r->ReadU32(&idf_docs));
    WWT_RETURN_NOT_OK(r->CheckCount(nterms, 8));
    if (nterms > UINT32_MAX) {
      return Status::Corruption("vocabulary of ", nterms,
                                " terms exceeds TermId");
    }
    const char* raw;

    // Vocabulary: offsets + search permutation + term blob.
    WWT_RETURN_NOT_OK(r->AlignTo(8, base));
    WWT_RETURN_NOT_OK(r->ReadRaw(nterms + 1, sizeof(uint64_t), &raw));
    const uint64_t* vocab_offsets = reinterpret_cast<const uint64_t*>(raw);
    uint64_t vocab_blob_size;
    WWT_RETURN_NOT_OK(ValidateOffsets(vocab_offsets, nterms, "vocabulary",
                                      &vocab_blob_size));
    WWT_RETURN_NOT_OK(r->AlignTo(8, base));
    WWT_RETURN_NOT_OK(r->ReadRaw(nterms, sizeof(uint32_t), &raw));
    const uint32_t* sorted = reinterpret_cast<const uint32_t*>(raw);
    for (uint64_t i = 0; i < nterms; ++i) {
      if (sorted[i] >= nterms) {
        return Status::Corruption("vocabulary search permutation entry ", i,
                                  " is out of range");
      }
    }
    const char* vocab_blob;
    WWT_RETURN_NOT_OK(r->ReadRaw(vocab_blob_size, 1, &vocab_blob));
    index->vocab_.m_offsets_ = vocab_offsets;
    index->vocab_.m_sorted_ = sorted;
    index->vocab_.m_blob_ = vocab_blob;
    index->vocab_.m_size_ = static_cast<size_t>(nterms);

    // IDF document frequencies.
    WWT_RETURN_NOT_OK(r->AlignTo(8, base));
    WWT_RETURN_NOT_OK(r->ReadRaw(nterms, sizeof(uint32_t), &raw));
    index->idf_.m_df_ = reinterpret_cast<const uint32_t*>(raw);
    index->idf_.m_df_size_ = static_cast<size_t>(nterms);
    index->idf_.num_docs_ = idf_docs;

    // Per-field conjunctive postings (docs-only varint-delta blobs).
    auto postings = std::make_unique<MappedPostingsSource>();
    postings->num_terms = static_cast<size_t>(nterms);
    for (int f = 0; f < kNumFields; ++f) {
      WWT_RETURN_NOT_OK(r->AlignTo(8, base));
      WWT_RETURN_NOT_OK(r->ReadRaw(nterms + 1, sizeof(uint64_t), &raw));
      const uint64_t* offsets = reinterpret_cast<const uint64_t*>(raw);
      uint64_t blob_size;
      WWT_RETURN_NOT_OK(
          ValidateOffsets(offsets, nterms, "postings", &blob_size));
      const char* blob;
      WWT_RETURN_NOT_OK(r->ReadRaw(blob_size, 1, &blob));
      postings->fields[f].offsets = offsets;
      postings->fields[f].blob = blob;
    }
    index->heap_ = nullptr;
    index->postings_ = std::move(postings);

    // Scoring layout: raw arrays behind a view; no recompute, no copy.
    uint32_t block_size;
    uint64_t npost, nblocks;
    WWT_RETURN_NOT_OK(r->ReadU32(&block_size));
    WWT_RETURN_NOT_OK(r->ReadU64(&npost));
    WWT_RETURN_NOT_OK(r->ReadU64(&nblocks));
    if (block_size == 0) {
      return Status::Corruption("scoring layout block size is 0");
    }
    ScoringView view;
    view.block_size = block_size;
    view.num_terms = static_cast<size_t>(nterms);
    WWT_RETURN_NOT_OK(r->AlignTo(8, base));
    WWT_RETURN_NOT_OK(r->ReadRaw(nterms + 1, sizeof(uint64_t), &raw));
    view.offsets = reinterpret_cast<const uint64_t*>(raw);
    uint64_t total;
    WWT_RETURN_NOT_OK(
        ValidateOffsets(view.offsets, nterms, "scoring posting", &total));
    if (total != npost) {
      return Status::Corruption("scoring offsets cover ", total,
                                " postings, header says ", npost);
    }
    WWT_RETURN_NOT_OK(r->AlignTo(8, base));
    WWT_RETURN_NOT_OK(r->ReadRaw(npost, sizeof(TableId), &raw));
    view.docs = reinterpret_cast<const TableId*>(raw);
    WWT_RETURN_NOT_OK(r->AlignTo(8, base));
    WWT_RETURN_NOT_OK(r->ReadRaw(npost, sizeof(double), &raw));
    view.scores = reinterpret_cast<const double*>(raw);
    WWT_RETURN_NOT_OK(r->AlignTo(8, base));
    WWT_RETURN_NOT_OK(r->ReadRaw(nterms + 1, sizeof(uint64_t), &raw));
    view.block_offsets = reinterpret_cast<const uint64_t*>(raw);
    WWT_RETURN_NOT_OK(
        ValidateOffsets(view.block_offsets, nterms, "scoring block", &total));
    if (total != nblocks) {
      return Status::Corruption("scoring block offsets cover ", total,
                                " blocks, header says ", nblocks);
    }
    // WAND derives each block's posting range arithmetically from the
    // block index, so the per-term block count must match exactly.
    for (uint64_t t = 0; t < nterms; ++t) {
      const uint64_t count = view.offsets[t + 1] - view.offsets[t];
      const uint64_t want = (count + block_size - 1) / block_size;
      if (view.block_offsets[t + 1] - view.block_offsets[t] != want) {
        return Status::Corruption("scoring layout of term ", t, " has ",
                                  view.block_offsets[t + 1] -
                                      view.block_offsets[t],
                                  " blocks for ", count, " postings");
      }
    }
    WWT_RETURN_NOT_OK(r->AlignTo(8, base));
    WWT_RETURN_NOT_OK(r->ReadRaw(nblocks, sizeof(TableId), &raw));
    view.block_last = reinterpret_cast<const TableId*>(raw);
    WWT_RETURN_NOT_OK(r->AlignTo(8, base));
    WWT_RETURN_NOT_OK(r->ReadRaw(nblocks, sizeof(double), &raw));
    view.block_max = reinterpret_cast<const double*>(raw);
    WWT_RETURN_NOT_OK(r->AlignTo(8, base));
    WWT_RETURN_NOT_OK(r->ReadRaw(nterms, sizeof(double), &raw));
    view.term_max = reinterpret_cast<const double*>(raw);

    index->mapped_scoring_ = view;
    index->scoring_ready_.store(true, std::memory_order_release);
    index->doc_count_ = static_cast<size_t>(doc_count);

    *out = std::move(index);
    return Status::OK();
  }
};

namespace {

// ---------------------------------------------------------------- sections

void WriteMeta(const Corpus& corpus, const CorpusOptions& options,
               serde::Writer* w) {
  w->WriteU64(options.seed);
  w->WriteDouble(options.scale);
  w->WriteI32(options.noise_pages);
  w->WriteU64(WorkloadFingerprint(options));
  w->WriteU64(corpus.store.size());
  w->WriteU64(corpus.queries.size());
  w->WriteU64(corpus.index->vocab().size());
}

Status ReadMeta(serde::Reader* r, SnapshotInfo* info) {
  WWT_RETURN_NOT_OK(r->ReadU64(&info->seed));
  WWT_RETURN_NOT_OK(r->ReadDouble(&info->scale));
  WWT_RETURN_NOT_OK(r->ReadI32(&info->noise_pages));
  WWT_RETURN_NOT_OK(r->ReadU64(&info->workload_hash));
  WWT_RETURN_NOT_OK(r->ReadU64(&info->num_tables));
  WWT_RETURN_NOT_OK(r->ReadU64(&info->num_queries));
  WWT_RETURN_NOT_OK(r->ReadU64(&info->num_terms));
  return Status::OK();
}

void WriteTruth(const TruthMap& truth, serde::Writer* w) {
  // Sorted by table id so identical corpora produce identical bytes
  // (content_hash doubles as a cache key).
  std::vector<TableId> ids;
  ids.reserve(truth.size());
  for (const auto& [id, _] : truth) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  w->WriteU64(ids.size());
  for (TableId id : ids) {
    const TableTruth& t = truth.at(id);
    w->WriteU32(id);
    w->WriteI32(t.topic);
    w->WriteU64(t.column_semantics.size());
    for (int sem : t.column_semantics) w->WriteI32(sem);
  }
}

Status ReadTruth(serde::Reader* r, TruthMap* truth) {
  uint64_t count;
  WWT_RETURN_NOT_OK(r->ReadU64(&count));
  WWT_RETURN_NOT_OK(r->CheckCount(count, 16));
  truth->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    TableId id;
    WWT_RETURN_NOT_OK(r->ReadU32(&id));
    TableTruth t;
    WWT_RETURN_NOT_OK(r->ReadI32(&t.topic));
    uint64_t nsem;
    WWT_RETURN_NOT_OK(r->ReadU64(&nsem));
    WWT_RETURN_NOT_OK(r->CheckCount(nsem, 4));
    t.column_semantics.resize(nsem);
    for (uint64_t s = 0; s < nsem; ++s) {
      WWT_RETURN_NOT_OK(r->ReadI32(&t.column_semantics[s]));
    }
    truth->emplace(id, std::move(t));
  }
  return Status::OK();
}

void WriteQueries(const std::vector<ResolvedQuery>& queries,
                  serde::Writer* w) {
  w->WriteU64(queries.size());
  for (const ResolvedQuery& rq : queries) {
    w->WriteString(rq.spec.name);
    w->WriteString(rq.spec.topic);
    w->WriteU64(rq.spec.columns.size());
    for (const QueryColumnSpec& col : rq.spec.columns) {
      w->WriteString(col.keywords);
      w->WriteString(col.column);
    }
    w->WriteI32(rq.spec.target_total);
    w->WriteI32(rq.spec.target_relevant);
    w->WriteI32(rq.topic);
    w->WriteU64(rq.semantics.size());
    for (int sem : rq.semantics) w->WriteI32(sem);
  }
}

Status ReadQueries(serde::Reader* r, std::vector<ResolvedQuery>* queries) {
  uint64_t count;
  WWT_RETURN_NOT_OK(r->ReadU64(&count));
  WWT_RETURN_NOT_OK(r->CheckCount(count, 16));
  queries->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ResolvedQuery rq;
    WWT_RETURN_NOT_OK(r->ReadString(&rq.spec.name));
    WWT_RETURN_NOT_OK(r->ReadString(&rq.spec.topic));
    uint64_t ncols;
    WWT_RETURN_NOT_OK(r->ReadU64(&ncols));
    WWT_RETURN_NOT_OK(r->CheckCount(ncols, 16));
    rq.spec.columns.resize(ncols);
    for (uint64_t c = 0; c < ncols; ++c) {
      WWT_RETURN_NOT_OK(r->ReadString(&rq.spec.columns[c].keywords));
      WWT_RETURN_NOT_OK(r->ReadString(&rq.spec.columns[c].column));
    }
    WWT_RETURN_NOT_OK(r->ReadI32(&rq.spec.target_total));
    WWT_RETURN_NOT_OK(r->ReadI32(&rq.spec.target_relevant));
    WWT_RETURN_NOT_OK(r->ReadI32(&rq.topic));
    uint64_t nsem;
    WWT_RETURN_NOT_OK(r->ReadU64(&nsem));
    WWT_RETURN_NOT_OK(r->CheckCount(nsem, 4));
    rq.semantics.resize(nsem);
    for (uint64_t s = 0; s < nsem; ++s) {
      WWT_RETURN_NOT_OK(r->ReadI32(&rq.semantics[s]));
    }
    queries->push_back(std::move(rq));
  }
  return Status::OK();
}

void WriteHarvestStats(const HarvestStats& stats, serde::Writer* w) {
  w->WriteI32(stats.table_tags);
  w->WriteI32(stats.data_tables);
  w->WriteI32(stats.tables_with_title);
  w->WriteU64(stats.verdicts.size());
  for (const auto& [verdict, count] : stats.verdicts) {
    w->WriteI32(static_cast<int32_t>(verdict));
    w->WriteI32(count);
  }
  w->WriteU64(stats.header_row_histogram.size());
  for (const auto& [rows, count] : stats.header_row_histogram) {
    w->WriteI32(rows);
    w->WriteI32(count);
  }
}

Status ReadHarvestStats(serde::Reader* r, HarvestStats* stats) {
  WWT_RETURN_NOT_OK(r->ReadI32(&stats->table_tags));
  WWT_RETURN_NOT_OK(r->ReadI32(&stats->data_tables));
  WWT_RETURN_NOT_OK(r->ReadI32(&stats->tables_with_title));
  uint64_t count;
  WWT_RETURN_NOT_OK(r->ReadU64(&count));
  WWT_RETURN_NOT_OK(r->CheckCount(count, 8));
  for (uint64_t i = 0; i < count; ++i) {
    int32_t verdict, n;
    WWT_RETURN_NOT_OK(r->ReadI32(&verdict));
    WWT_RETURN_NOT_OK(r->ReadI32(&n));
    stats->verdicts[static_cast<TableVerdict>(verdict)] = n;
  }
  WWT_RETURN_NOT_OK(r->ReadU64(&count));
  WWT_RETURN_NOT_OK(r->CheckCount(count, 8));
  for (uint64_t i = 0; i < count; ++i) {
    int32_t rows, n;
    WWT_RETURN_NOT_OK(r->ReadI32(&rows));
    WWT_RETURN_NOT_OK(r->ReadI32(&n));
    stats->header_row_histogram[rows] = n;
  }
  return Status::OK();
}

// ------------------------------------------------------------------ header

Status ParseHeader(std::string_view file, const std::string& path,
                   SnapshotInfo* info, std::string_view* payload) {
  if (file.size() < kHeaderBytes) {
    return Status::Corruption("'", path, "' is not a snapshot: ",
                              file.size(), " bytes, header needs ",
                              kHeaderBytes);
  }
  if (std::memcmp(file.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::Corruption("'", path,
                              "' is not a snapshot (bad magic)");
  }
  serde::Reader header(file.substr(sizeof(kSnapshotMagic)));
  uint32_t version, flags;
  uint64_t payload_size, checksum;
  WWT_RETURN_NOT_OK(header.ReadU32(&version));
  WWT_RETURN_NOT_OK(header.ReadU32(&flags));
  WWT_RETURN_NOT_OK(header.ReadU64(&payload_size));
  WWT_RETURN_NOT_OK(header.ReadU64(&checksum));
  if (version < kMinSnapshotFormatVersion ||
      version > kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        "snapshot format version mismatch in '", path, "': file has ",
        version, ", this build reads ", kMinSnapshotFormatVersion, "..",
        kSnapshotFormatVersion,
        " — rebuild the snapshot with tools/wwt_indexer");
  }
  if (file.size() - kHeaderBytes != payload_size) {
    return Status::Corruption("truncated snapshot '", path, "': header says ",
                              payload_size, " payload bytes, file has ",
                              file.size() - kHeaderBytes);
  }
  *payload = file.substr(kHeaderBytes);
  // v2/v3 loads decode the whole payload anyway, so verifying the
  // checksum costs one extra pass. A v4 load is zero-copy — touching
  // every payload byte would forfeit the mmap cold-start win — so the
  // save-time checksum is trusted as a content hash and integrity is
  // enforced structurally by the section readers instead.
  if (version < 4 && serde::Checksum(*payload) != checksum) {
    return Status::Corruption("checksum mismatch in '", path,
                              "': snapshot payload is corrupt");
  }
  info->format_version = version;
  info->content_hash = checksum;
  info->file_bytes = file.size();
  return Status::OK();
}

/// Splits the payload into (tag -> body) spans, preserving bounds checks.
/// store_base/index_base are the bodies' absolute file offsets — the
/// anchor the v4 readers verify their alignment markers against.
struct Sections {
  std::string_view meta, store, index, truth, queries, harvest;
  size_t store_base = 0, index_base = 0;
};

Status ParseSections(std::string_view payload, Sections* out,
                     std::vector<SnapshotSection>* listing = nullptr) {
  serde::Reader r(payload);
  while (!r.exhausted()) {
    uint32_t tag;
    WWT_RETURN_NOT_OK(r.ReadU32(&tag));
    uint64_t size;
    WWT_RETURN_NOT_OK(r.ReadU64(&size));
    const size_t body_base = kHeaderBytes + r.offset();
    std::string_view body;
    WWT_RETURN_NOT_OK(r.ReadSpan(size, &body));
    if (listing != nullptr) {
      const char chars[4] = {static_cast<char>(tag),
                             static_cast<char>(tag >> 8),
                             static_cast<char>(tag >> 16),
                             static_cast<char>(tag >> 24)};
      listing->push_back({std::string(chars, sizeof(chars)), size});
    }
    switch (tag) {
      case kSecMeta: out->meta = body; break;
      case kSecStore: out->store = body; out->store_base = body_base; break;
      case kSecIndex: out->index = body; out->index_base = body_base; break;
      case kSecTruth: out->truth = body; break;
      case kSecQueries: out->queries = body; break;
      case kSecHarvest: out->harvest = body; break;
      default: break;  // unknown section: forward-compatible skip
    }
  }
  if (out->meta.data() == nullptr || out->store.data() == nullptr ||
      out->index.data() == nullptr || out->truth.data() == nullptr ||
      out->queries.data() == nullptr) {
    return Status::Corruption("snapshot is missing a required section");
  }
  return Status::OK();
}

}  // namespace

// ------------------------------------------------------------- public API

uint64_t WorkloadFingerprint(const CorpusOptions& options) {
  const std::vector<QuerySpec>& workload =
      options.workload.empty() ? Table1Workload() : options.workload;
  uint64_t h = Fnv1a("wwt-workload-v1");
  for (const QuerySpec& spec : workload) {
    h = HashCombine(h, Fnv1a(spec.name));
    h = HashCombine(h, Fnv1a(spec.topic));
    for (const QueryColumnSpec& col : spec.columns) {
      h = HashCombine(h, Fnv1a(col.keywords));
      h = HashCombine(h, Fnv1a(col.column));
    }
    h = HashCombine(h, static_cast<uint64_t>(spec.target_total));
    h = HashCombine(h, static_cast<uint64_t>(spec.target_relevant));
  }
  return h;
}

Status SaveSnapshot(const Corpus& corpus, const CorpusOptions& options,
                    const std::string& path, SnapshotInfo* info) {
  return SaveSnapshotAtVersion(corpus, options, path,
                               kSnapshotFormatVersion, info);
}

Status SaveSnapshotAtVersion(const Corpus& corpus,
                             const CorpusOptions& options,
                             const std::string& path,
                             uint32_t format_version, SnapshotInfo* info) {
  if (corpus.index == nullptr) {
    return Status::InvalidArgument("corpus has no index to snapshot");
  }
  if (format_version < kMinSnapshotFormatVersion ||
      format_version > kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        "cannot write snapshot format version ", format_version,
        ", this build writes ", kMinSnapshotFormatVersion, "..",
        kSnapshotFormatVersion);
  }
  serde::Writer payload;
  {
    size_t s = BeginSection(kSecMeta, &payload);
    WriteMeta(corpus, options, &payload);
    EndSection(s, &payload);
  }
  {
    size_t s = BeginSection(kSecStore, &payload);
    SnapshotCodec::WriteStore(corpus.store, format_version, &payload);
    EndSection(s, &payload);
  }
  {
    size_t s = BeginSection(kSecIndex, &payload);
    WWT_RETURN_NOT_OK(
        SnapshotCodec::WriteIndex(*corpus.index, format_version, &payload));
    EndSection(s, &payload);
  }
  {
    size_t s = BeginSection(kSecTruth, &payload);
    WriteTruth(corpus.truth, &payload);
    EndSection(s, &payload);
  }
  {
    size_t s = BeginSection(kSecQueries, &payload);
    WriteQueries(corpus.queries, &payload);
    EndSection(s, &payload);
  }
  {
    size_t s = BeginSection(kSecHarvest, &payload);
    WriteHarvestStats(corpus.harvest_stats, &payload);
    EndSection(s, &payload);
  }

  const uint64_t checksum = serde::Checksum(payload.buffer());
  serde::Writer header;
  header.WriteBytes(kSnapshotMagic, sizeof(kSnapshotMagic));
  header.WriteU32(format_version);
  header.WriteU32(0);  // flags, reserved
  header.WriteU64(payload.size());
  header.WriteU64(checksum);

  WWT_RETURN_NOT_OK(serde::EnsureParentDir(path));
  WWT_RETURN_NOT_OK(
      serde::WriteFileAtomic(path, {header.buffer(), payload.buffer()}));
  if (info != nullptr) {
    info->format_version = format_version;
    info->content_hash = checksum;
    info->file_bytes = header.size() + payload.size();
    info->seed = options.seed;
    info->scale = options.scale;
    info->noise_pages = options.noise_pages;
    info->workload_hash = WorkloadFingerprint(options);
    info->num_tables = corpus.store.size();
    info->num_queries = corpus.queries.size();
    info->num_terms = corpus.index->vocab().size();
  }
  return Status::OK();
}

StatusOr<SnapshotInfo> InspectSnapshot(const std::string& path) {
  WWT_ASSIGN_OR_RETURN(serde::InputFile file, serde::InputFile::Open(path));
  SnapshotInfo info;
  std::string_view payload;
  WWT_RETURN_NOT_OK(ParseHeader(file.data(), path, &info, &payload));
  Sections sections;
  WWT_RETURN_NOT_OK(ParseSections(payload, &sections, &info.sections));
  serde::Reader meta(sections.meta);
  WWT_RETURN_NOT_OK(ReadMeta(&meta, &info));
  return info;
}

StatusOr<Corpus> LoadSnapshot(serde::InputFile file, const std::string& path,
                              SnapshotInfo* info) {
  // The mapping is shared up front so every borrowed view below points
  // into storage whose address can no longer change; a v4 corpus takes
  // it along, everyone else drops it at return.
  auto mapping = std::make_shared<const serde::InputFile>(std::move(file));
  SnapshotInfo local_info;
  std::string_view payload;
  WWT_RETURN_NOT_OK(ParseHeader(mapping->data(), path, &local_info, &payload));
  Sections sections;
  WWT_RETURN_NOT_OK(ParseSections(payload, &sections));

  serde::Reader meta(sections.meta);
  WWT_RETURN_NOT_OK(ReadMeta(&meta, &local_info));

  Corpus corpus;
  {
    serde::Reader r(sections.store);
    WWT_RETURN_NOT_OK(SnapshotCodec::ReadStore(
        &r, local_info.format_version, sections.store_base, &corpus.store));
  }
  {
    serde::Reader r(sections.index);
    WWT_RETURN_NOT_OK(SnapshotCodec::ReadIndex(
        &r, local_info.format_version, sections.index_base, &corpus.index));
  }
  {
    serde::Reader r(sections.truth);
    WWT_RETURN_NOT_OK(ReadTruth(&r, &corpus.truth));
  }
  {
    serde::Reader r(sections.queries);
    WWT_RETURN_NOT_OK(ReadQueries(&r, &corpus.queries));
  }
  if (sections.harvest.data() != nullptr) {
    serde::Reader r(sections.harvest);
    WWT_RETURN_NOT_OK(ReadHarvestStats(&r, &corpus.harvest_stats));
  }

  // Cross-section sanity: META counts must agree with the decoded state.
  if (corpus.store.size() != local_info.num_tables ||
      corpus.queries.size() != local_info.num_queries ||
      corpus.index->vocab().size() != local_info.num_terms) {
    return Status::Corruption("snapshot '", path,
                              "' META counts disagree with decoded state");
  }
  if (corpus.index->num_docs() != corpus.store.size()) {
    return Status::Corruption("snapshot '", path, "' has ",
                              corpus.store.size(), " tables but ",
                              corpus.index->num_docs(), " indexed docs");
  }

  // `kb` stays null, exactly like a partitioned shard's: serving never
  // consults it, and rebuilding it (deterministic in the seed, but
  // ~1.5 ms of tuple generation) would dwarf the whole zero-copy load.
  // Anything that needs the knowledge base reconstructs it from
  // SnapshotInfo::seed.
  if (local_info.format_version >= 4) corpus.mapping = std::move(mapping);
  if (info != nullptr) *info = local_info;
  return corpus;
}

StatusOr<Corpus> LoadSnapshot(const std::string& path, SnapshotInfo* info) {
  WWT_ASSIGN_OR_RETURN(serde::InputFile file, serde::InputFile::Open(path));
  return LoadSnapshot(std::move(file), path, info);
}

BuildOrLoadResult BuildOrLoadCorpus(const CorpusOptions& options,
                                    const std::string& path) {
  BuildOrLoadResult result;
  WallTimer timer;
  if (!path.empty()) {
    // One read of the file: load it, then compare its recorded
    // generation parameters (an Inspect-then-Load probe would page in
    // and checksum the whole payload twice on every warm start).
    SnapshotInfo info;
    StatusOr<Corpus> loaded = LoadSnapshot(path, &info);
    if (loaded.ok()) {
      if (info.seed == options.seed && info.scale == options.scale &&
          info.noise_pages == options.noise_pages &&
          info.workload_hash == WorkloadFingerprint(options)) {
        result.corpus = std::move(loaded).value();
        result.info = info;
        result.loaded = true;
        result.seconds = timer.ElapsedSeconds();
        return result;
      }
      WWT_LOG(Info) << "snapshot '" << path
                    << "' was built with different parameters, rebuilding";
    } else if (!loaded.status().IsIOError()) {
      // Missing file is the normal first run; anything else is worth a
      // warning before the silent rebuild.
      WWT_LOG(Warning) << "snapshot '" << path << "' is unusable ("
                       << loaded.status().ToString() << "), rebuilding";
    }
  }

  WallTimer generate_timer;
  result.corpus = GenerateCorpus(options);
  result.generate_seconds = generate_timer.ElapsedSeconds();
  if (!path.empty()) {
    // A failed save (read-only path, full disk) must not discard the
    // corpus we just spent the real money building: warn and serve it.
    Status saved = SaveSnapshot(result.corpus, options, path, &result.info);
    if (!saved.ok()) {
      WWT_LOG(Warning) << "could not save snapshot '" << path
                       << "': " << saved.ToString()
                       << " — continuing with the in-memory corpus";
      result.info = SnapshotInfo();
    }
  }
  result.loaded = false;
  result.seconds = timer.ElapsedSeconds();
  return result;
}

std::string SnapshotPathFromEnv() {
  const char* path = std::getenv("WWT_SNAPSHOT");
  return path != nullptr ? std::string(path) : std::string();
}

// ------------------------------------------------------- sharded corpora

namespace {

/// `base.wwtset` -> `base`; anything else is returned unchanged.
std::string StripSetSuffix(const std::string& path) {
  constexpr char kSuffix[] = ".wwtset";
  constexpr size_t kSuffixLen = sizeof(kSuffix) - 1;
  if (path.size() > kSuffixLen &&
      path.compare(path.size() - kSuffixLen, kSuffixLen, kSuffix) == 0) {
    return path.substr(0, path.size() - kSuffixLen);
  }
  return path;
}

std::string ShardFileName(const std::string& manifest_path, int shard,
                          int num_shards, uint64_t file_tag) {
  const std::string base = StripSetSuffix(manifest_path);
  char suffix[96];
  if (file_tag != 0) {
    std::snprintf(suffix, sizeof(suffix),
                  ".g%llu.shard-%d-of-%d.wwtsnap",
                  static_cast<unsigned long long>(file_tag), shard,
                  num_shards);
  } else {
    std::snprintf(suffix, sizeof(suffix), ".shard-%d-of-%d.wwtsnap", shard,
                  num_shards);
  }
  return base + suffix;
}

/// Fixed manifest header: magic + version + flags + size + checksum —
/// the same framing as snapshots.
constexpr size_t kSetHeaderBytes = 8 + 4 + 4 + 8 + 8;

}  // namespace

uint64_t SetContentHash(const std::vector<uint64_t>& shard_hashes) {
  // One shard serves byte-identically to the plain snapshot, so it must
  // also fingerprint identically — the set hash IS the shard hash.
  if (shard_hashes.size() == 1) return shard_hashes[0];
  uint64_t h = Fnv1a("wwt-corpus-set-v1");
  h = HashCombine(h, shard_hashes.size());
  for (uint64_t shard_hash : shard_hashes) h = HashCombine(h, shard_hash);
  return h;
}

std::vector<Corpus> PartitionCorpus(const Corpus& corpus, int num_shards) {
  WWT_CHECK(corpus.index != nullptr) << "corpus has no index to partition";
  const size_t n = corpus.store.size();
  const size_t shards = std::max<size_t>(
      1, std::min<size_t>(static_cast<size_t>(std::max(num_shards, 1)), n));

  std::vector<Corpus> out;
  out.reserve(shards);
  TableId begin = corpus.store.first_id();
  for (size_t s = 0; s < shards; ++s) {
    // Count-balanced contiguous ranges: the first n % shards shards take
    // one extra table.
    const size_t count = n / shards + (s < n % shards ? 1 : 0);
    const TableId end = begin + static_cast<TableId>(count);
    out.push_back(SnapshotCodec::BuildShard(corpus, begin, end));
    begin = end;
  }
  return out;
}

Status SaveShardedSnapshot(const Corpus& corpus, const CorpusOptions& options,
                           const std::string& manifest_path, int num_shards,
                           SetManifest* manifest, uint64_t file_tag) {
  if (num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1, got ",
                                   num_shards);
  }
  if (corpus.index == nullptr) {
    return Status::InvalidArgument("corpus has no index to snapshot");
  }
  std::vector<Corpus> shards = PartitionCorpus(corpus, num_shards);
  const int n = static_cast<int>(shards.size());

  SetManifest m;
  m.format_version = kSetFormatVersion;
  m.seed = options.seed;
  m.scale = options.scale;
  m.noise_pages = options.noise_pages;
  m.workload_hash = WorkloadFingerprint(options);
  m.num_tables = corpus.store.size();

  std::vector<uint64_t> hashes;
  hashes.reserve(shards.size());
  for (int s = 0; s < n; ++s) {
    const std::string shard_path = ShardFileName(manifest_path, s, n,
                                                 file_tag);
    SnapshotInfo info;
    WWT_RETURN_NOT_OK(SaveSnapshot(shards[s], options, shard_path, &info));
    ShardManifestEntry entry;
    // Relative to the manifest's directory, so the whole set moves as a
    // unit.
    entry.file = shard_path.substr(serde::DirName(manifest_path).size());
    entry.content_hash = info.content_hash;
    entry.first_table_id = shards[s].store.first_id();
    entry.num_tables = shards[s].store.size();
    hashes.push_back(info.content_hash);
    m.shards.push_back(std::move(entry));
  }
  m.set_hash = SetContentHash(hashes);

  serde::Writer payload;
  payload.WriteU64(m.set_hash);
  payload.WriteU64(m.seed);
  payload.WriteDouble(m.scale);
  payload.WriteI32(m.noise_pages);
  payload.WriteU64(m.workload_hash);
  payload.WriteU64(m.num_tables);
  payload.WriteU32(static_cast<uint32_t>(m.shards.size()));
  for (const ShardManifestEntry& entry : m.shards) {
    payload.WriteString(entry.file);
    payload.WriteU64(entry.content_hash);
    payload.WriteU64(entry.first_table_id);
    payload.WriteU64(entry.num_tables);
  }

  serde::Writer header;
  header.WriteBytes(kSetMagic, sizeof(kSetMagic));
  header.WriteU32(kSetFormatVersion);
  header.WriteU32(0);  // flags, reserved
  header.WriteU64(payload.size());
  header.WriteU64(serde::Checksum(payload.buffer()));

  WWT_RETURN_NOT_OK(serde::EnsureParentDir(manifest_path));
  WWT_RETURN_NOT_OK(serde::WriteFileAtomic(
      manifest_path, {header.buffer(), payload.buffer()}));
  if (manifest != nullptr) *manifest = std::move(m);
  return Status::OK();
}

StatusOr<SetManifest> LoadSetManifest(const std::string& path) {
  WWT_ASSIGN_OR_RETURN(serde::InputFile file, serde::InputFile::Open(path));
  const std::string_view data = file.data();
  if (data.size() < kSetHeaderBytes) {
    return Status::Corruption("'", path, "' is not a corpus-set manifest: ",
                              data.size(), " bytes, header needs ",
                              kSetHeaderBytes);
  }
  if (std::memcmp(data.data(), kSetMagic, sizeof(kSetMagic)) != 0) {
    return Status::Corruption("'", path,
                              "' is not a corpus-set manifest (bad magic)");
  }
  serde::Reader header(data.substr(sizeof(kSetMagic)));
  uint32_t version, flags;
  uint64_t payload_size, checksum;
  WWT_RETURN_NOT_OK(header.ReadU32(&version));
  WWT_RETURN_NOT_OK(header.ReadU32(&flags));
  WWT_RETURN_NOT_OK(header.ReadU64(&payload_size));
  WWT_RETURN_NOT_OK(header.ReadU64(&checksum));
  if (version != kSetFormatVersion) {
    return Status::InvalidArgument(
        "corpus-set manifest version mismatch in '", path, "': file has ",
        version, ", this build reads ", kSetFormatVersion,
        " — rebuild the set with wwt_indexer --shards");
  }
  if (data.size() - kSetHeaderBytes != payload_size) {
    return Status::Corruption("truncated manifest '", path,
                              "': header says ", payload_size,
                              " payload bytes, file has ",
                              data.size() - kSetHeaderBytes);
  }
  const std::string_view payload = data.substr(kSetHeaderBytes);
  if (serde::Checksum(payload) != checksum) {
    return Status::Corruption("checksum mismatch in '", path,
                              "': manifest payload is corrupt");
  }

  SetManifest m;
  m.format_version = version;
  serde::Reader r(payload);
  WWT_RETURN_NOT_OK(r.ReadU64(&m.set_hash));
  WWT_RETURN_NOT_OK(r.ReadU64(&m.seed));
  WWT_RETURN_NOT_OK(r.ReadDouble(&m.scale));
  WWT_RETURN_NOT_OK(r.ReadI32(&m.noise_pages));
  WWT_RETURN_NOT_OK(r.ReadU64(&m.workload_hash));
  WWT_RETURN_NOT_OK(r.ReadU64(&m.num_tables));
  uint32_t count;
  WWT_RETURN_NOT_OK(r.ReadU32(&count));
  WWT_RETURN_NOT_OK(r.CheckCount(count, 32));
  if (count == 0) {
    return Status::Corruption("manifest '", path, "' lists no shards");
  }
  std::vector<uint64_t> hashes;
  uint64_t next_id = 0, total = 0;
  for (uint32_t s = 0; s < count; ++s) {
    ShardManifestEntry entry;
    WWT_RETURN_NOT_OK(r.ReadString(&entry.file));
    WWT_RETURN_NOT_OK(r.ReadU64(&entry.content_hash));
    WWT_RETURN_NOT_OK(r.ReadU64(&entry.first_table_id));
    WWT_RETURN_NOT_OK(r.ReadU64(&entry.num_tables));
    if (s == 0) {
      next_id = entry.first_table_id;
    } else if (entry.first_table_id < next_id) {
      return Status::Corruption("manifest '", path, "' shard ", s,
                                " overlaps or reorders the id ranges");
    }
    next_id = entry.first_table_id + entry.num_tables;
    total += entry.num_tables;
    hashes.push_back(entry.content_hash);
    m.shards.push_back(std::move(entry));
  }
  if (total != m.num_tables) {
    return Status::Corruption("manifest '", path, "' claims ",
                              m.num_tables, " tables but its shards sum to ",
                              total);
  }
  if (SetContentHash(hashes) != m.set_hash) {
    return Status::Corruption("manifest '", path,
                              "' set hash does not match its shard hashes");
  }
  return m;
}

std::string ResolveShardPath(const std::string& manifest_path,
                             const std::string& file) {
  if (!file.empty() && file.front() == '/') return file;
  return serde::DirName(manifest_path) + file;
}

bool IsSetManifest(const std::string& path) {
  std::unique_ptr<FILE, int (*)(FILE*)> f(std::fopen(path.c_str(), "rb"),
                                          &std::fclose);
  if (!f) return false;
  char magic[sizeof(kSetMagic)];
  if (std::fread(magic, 1, sizeof(magic), f.get()) != sizeof(magic)) {
    return false;
  }
  return std::memcmp(magic, kSetMagic, sizeof(kSetMagic)) == 0;
}

}  // namespace wwt
