#include "index/table_index.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace wwt {
namespace {

/// Relative slack applied to WAND upper bounds before comparing against
/// the heap threshold. Upper-bound sums and real document scores round
/// differently, so a mathematically valid bound could fall a few ulps
/// below an achievable score; inflating the bound by ~1e-9 relative
/// makes wrongful pruning impossible while costing nothing measurable in
/// skip power.
inline double SafeUpper(double x) { return x + x * 1e-9; }

/// The total order of search results: score desc, doc id asc.
inline bool BetterHit(const ScoredDoc& a, const ScoredDoc& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.doc < b.doc;
}

/// Heap comparator form of BetterHit (a struct inlines where a function
/// pointer would not).
struct BetterHitCmp {
  bool operator()(const ScoredDoc& a, const ScoredDoc& b) const {
    return BetterHit(a, b);
  }
};

}  // namespace

const char* ProbeScorerName(ProbeScorer scorer) {
  switch (scorer) {
    case ProbeScorer::kWand:
      return "wand";
    case ProbeScorer::kExhaustive:
      return "exhaustive";
  }
  return "unknown";
}

bool ParseProbeScorer(const std::string& name, ProbeScorer* out) {
  if (name == "wand") {
    *out = ProbeScorer::kWand;
    return true;
  }
  if (name == "exhaustive") {
    *out = ProbeScorer::kExhaustive;
    return true;
  }
  return false;
}

size_t HeapPostingsSource::HeapBytes() const {
  size_t bytes = 0;
  for (const auto& field : postings) {
    bytes += field.capacity() * sizeof(field[0]);
    for (const auto& plist : field) {
      bytes += plist.capacity() * sizeof(Posting);
    }
  }
  for (const auto& lens : field_len) {
    bytes += lens.capacity() * sizeof(uint32_t);
  }
  return bytes;
}

void MappedPostingsSource::AppendDocs(int field, TermId term,
                                      std::vector<TableId>* out) const {
  if (term >= num_terms) return;
  const FieldView& fv = fields[field];
  const char* p = fv.blob + fv.offsets[term];
  const char* const end = fv.blob + fv.offsets[term + 1];
  // Varint-delta stream: first doc absolute, then gaps. A garbled stream
  // can only end the list early — every read stays within [p, end).
  uint64_t prev = 0;
  bool first = true;
  while (p < end) {
    uint64_t v = 0;
    int shift = 0;
    bool complete = false;
    while (p < end && shift < 64) {
      const uint8_t b = static_cast<uint8_t>(*p++);
      v |= static_cast<uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) {
        complete = true;
        break;
      }
      shift += 7;
    }
    if (!complete) break;
    const uint64_t doc = first ? v : prev + v;
    first = false;
    prev = doc;
    out->push_back(static_cast<TableId>(doc));
  }
}

TableIndex::TableIndex(IndexOptions options,
                       TokenizerOptions tokenizer_options)
    : options_(options), tokenizer_(tokenizer_options) {
  auto heap = std::make_unique<HeapPostingsSource>();
  heap_ = heap.get();
  postings_ = std::move(heap);
}

size_t TableIndex::HeapBytes() const {
  size_t bytes = postings_->HeapBytes();
  bytes += scoring_.offsets.capacity() * sizeof(uint64_t);
  bytes += scoring_.docs.capacity() * sizeof(TableId);
  bytes += scoring_.scores.capacity() * sizeof(double);
  bytes += scoring_.block_offsets.capacity() * sizeof(uint64_t);
  bytes += scoring_.block_last.capacity() * sizeof(TableId);
  bytes += scoring_.block_max.capacity() * sizeof(double);
  bytes += scoring_.term_max.capacity() * sizeof(double);
  if (!vocab_.mapped()) {
    for (TermId t = 0; t < vocab_.size(); ++t) {
      // Term bytes counted twice: once in the term vector, once as the
      // hash-map key (plus untracked node overhead — this is an
      // estimate, not an audit).
      bytes += 2 * vocab_.Term(t).size() + sizeof(TermId);
    }
  }
  if (!idf_.mapped()) bytes += vocab_.size() * sizeof(uint32_t);
  return bytes;
}

std::vector<TermId> TableIndex::TermsOf(const std::string& text) {
  return vocab_.InternAll(tokenizer_.Tokenize(text));
}

std::vector<TermId> TableIndex::QueryTerms(
    const std::vector<std::string>& keywords, bool keep_unknown) const {
  std::vector<TermId> out;
  for (const std::string& kw : keywords) {
    for (const std::string& tok : tokenizer_.Tokenize(kw)) {
      if (options_.drop_query_stopwords && Tokenizer::IsStopword(tok)) {
        continue;
      }
      auto id = vocab_.Find(tok);
      if (id) {
        out.push_back(*id);
      } else if (keep_unknown) {
        out.push_back(kInvalidTerm);
      }
    }
  }
  return out;
}

void TableIndex::Add(const WebTable& table) {
  WWT_CHECK(heap_ != nullptr) << "mapped TableIndex is immutable";
  const TableId doc = table.id;

  std::string header_text;
  for (const std::string& title : table.title_rows) {
    header_text += title;
    header_text += ' ';
  }
  for (const auto& row : table.header_rows) {
    for (const auto& cell : row) {
      header_text += cell;
      header_text += ' ';
    }
  }
  std::string context_text = table.ContextText();
  std::string content_text;
  for (const auto& row : table.body) {
    for (const auto& cell : row) {
      content_text += cell;
      content_text += ' ';
    }
  }

  const std::string* field_text[kNumFields] = {&header_text, &context_text,
                                               &content_text};
  std::vector<TermId> all_terms;
  for (int f = 0; f < kNumFields; ++f) {
    std::vector<TermId> terms = TermsOf(*field_text[f]);
    all_terms.insert(all_terms.end(), terms.begin(), terms.end());

    std::unordered_map<TermId, uint32_t> tf;
    for (TermId t : terms) ++tf[t];
    auto& field_postings = heap_->postings[f];
    if (vocab_.size() > field_postings.size()) {
      field_postings.resize(vocab_.size());
    }
    for (const auto& [t, count] : tf) {
      // Ids are assigned in ascending order by the store, so postings
      // remain sorted by construction; enforced here.
      auto& plist = field_postings[t];
      WWT_CHECK(plist.empty() || plist.back().doc < doc)
          << "tables must be added in ascending id order";
      plist.push_back({doc, static_cast<float>(count)});
    }
    auto& lens = heap_->field_len[f];
    if (doc >= lens.size()) lens.resize(doc + 1, 0);
    lens[doc] = static_cast<uint32_t>(terms.size());
  }
  idf_.AddDocument(all_terms);
  ++doc_count_;
  // The merged scoring layout depends on postings, lengths and IDF; any
  // previously built layout is stale. Add() never overlaps queries (the
  // class contract), so dropping it here is race-free.
  if (scoring_ready_.load(std::memory_order_relaxed)) {
    scoring_ = ScoringLayout();
    scoring_ready_.store(false, std::memory_order_release);
  }
}

void TableIndex::SeedVocabulary(const Vocabulary& vocab) {
  WWT_CHECK(heap_ != nullptr) << "mapped TableIndex is immutable";
  WWT_CHECK(doc_count_ == 0) << "SeedVocabulary must precede Add()";
  vocab_ = vocab;
}

void TableIndex::InstallGlobalStats(const IdfDictionary& idf) {
  WWT_CHECK(heap_ != nullptr) << "mapped TableIndex is immutable";
  idf_ = idf;
  // Scores depend on IDF; any previously built layout is stale. Same
  // contract as Add(): never overlaps queries.
  if (scoring_ready_.load(std::memory_order_relaxed)) {
    scoring_ = ScoringLayout();
    scoring_ready_.store(false, std::memory_order_release);
  }
}

void TableIndex::FinishScoringLayout(ScoringLayout* layout) {
  const uint64_t bs = std::max<uint32_t>(1u, layout->block_size);
  const size_t nterms =
      layout->offsets.empty() ? 0 : layout->offsets.size() - 1;
  layout->block_last.clear();
  layout->block_max.clear();
  layout->block_offsets.clear();
  layout->block_offsets.reserve(nterms + 1);
  layout->block_offsets.push_back(0);
  layout->term_max.assign(nterms, 0.0);
  for (size_t t = 0; t < nterms; ++t) {
    const uint64_t begin = layout->offsets[t];
    const uint64_t end = layout->offsets[t + 1];
    double tmax = 0.0;
    for (uint64_t b = begin; b < end; b += bs) {
      const uint64_t be = std::min(end, b + bs);
      double bmax = 0.0;
      for (uint64_t i = b; i < be; ++i) {
        bmax = std::max(bmax, layout->scores[i]);
      }
      layout->block_last.push_back(layout->docs[be - 1]);
      layout->block_max.push_back(bmax);
      tmax = std::max(tmax, bmax);
    }
    layout->term_max[t] = tmax;
    layout->block_offsets.push_back(layout->block_last.size());
  }
}

void TableIndex::EnsureScoringLayout() const {
  if (scoring_ready_.load(std::memory_order_acquire)) return;
  MutexLock lock(scoring_mu_);
  if (scoring_ready_.load(std::memory_order_relaxed)) return;
  WWT_CHECK(heap_ != nullptr)
      << "mapped TableIndex must install its scoring view at load";

  ScoringLayout layout;
  layout.block_size = std::max<uint32_t>(1u, options_.scoring_block_size);
  const size_t nterms = vocab_.size();
  layout.offsets.reserve(nterms + 1);
  layout.offsets.push_back(0);
  for (size_t t = 0; t < nterms; ++t) {
    const double idf = idf_.Idf(static_cast<TermId>(t));
    const double idf2 = idf * idf;
    const std::vector<Posting>* lists[kNumFields];
    size_t pos[kNumFields];
    for (int f = 0; f < kNumFields; ++f) {
      lists[f] =
          t < heap_->postings[f].size() ? &heap_->postings[f][t] : nullptr;
      pos[f] = 0;
    }
    // Merge the (doc-sorted) per-field lists; a doc's combined score is
    // its field contributions summed in field order, which both scorers
    // then consume as one value — the source of their bit-equality.
    for (;;) {
      TableId next = 0;
      bool any = false;
      for (int f = 0; f < kNumFields; ++f) {
        if (!lists[f] || pos[f] >= lists[f]->size()) continue;
        const TableId d = (*lists[f])[pos[f]].doc;
        if (!any || d < next) {
          next = d;
          any = true;
        }
      }
      if (!any) break;
      double s = 0.0;
      for (int f = 0; f < kNumFields; ++f) {
        if (!lists[f] || pos[f] >= lists[f]->size()) continue;
        const Posting& p = (*lists[f])[pos[f]];
        if (p.doc != next) continue;
        const double len = heap_->field_len[f][p.doc] + 1.0;
        s += options_.boosts[f] * std::sqrt(p.tf) * idf2 / std::sqrt(len);
        ++pos[f];
      }
      layout.docs.push_back(next);
      layout.scores.push_back(s);
    }
    layout.offsets.push_back(layout.docs.size());
  }
  FinishScoringLayout(&layout);

  scoring_ = std::move(layout);
  scoring_ready_.store(true, std::memory_order_release);
}

ScoringView TableIndex::ViewOfScoring() const {
  if (mapped_scoring_.offsets != nullptr) return mapped_scoring_;
  ScoringView view;
  view.block_size = std::max<uint32_t>(1u, scoring_.block_size);
  view.num_terms = scoring_.offsets.empty() ? 0 : scoring_.offsets.size() - 1;
  view.offsets = scoring_.offsets.data();
  view.docs = scoring_.docs.data();
  view.scores = scoring_.scores.data();
  view.block_offsets = scoring_.block_offsets.data();
  view.block_last = scoring_.block_last.data();
  view.block_max = scoring_.block_max.data();
  view.term_max = scoring_.term_max.data();
  return view;
}

std::vector<ScoredDoc> TableIndex::Search(
    const std::vector<std::string>& keywords, int k,
    ProbeScorer scorer) const {
  std::vector<TermId> terms = QueryTerms(keywords);
  // Deduplicate query terms; repeated keywords should not double-count.
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  if (terms.empty() || k == 0) return {};

  EnsureScoringLayout();
  const ScoringView view = ViewOfScoring();
  if (scorer == ProbeScorer::kWand && k > 0) {
    return SearchWand(view, terms, k);
  }
  return SearchExhaustive(view, terms, k);
}

std::vector<ScoredDoc> TableIndex::SearchExhaustive(
    const ScoringView& view, const std::vector<TermId>& terms, int k) const {
  std::unordered_map<TableId, double> scores;
  for (TermId t : terms) {
    if (static_cast<size_t>(t) >= view.num_terms) continue;
    const uint64_t end = view.offsets[t + 1];
    for (uint64_t i = view.offsets[t]; i < end; ++i) {
      scores[view.docs[i]] += view.scores[i];
    }
  }
  std::vector<ScoredDoc> hits;
  hits.reserve(scores.size());
  for (const auto& [doc, score] : scores) hits.push_back({doc, score});
  std::sort(hits.begin(), hits.end(), BetterHit);
  if (k >= 0 && static_cast<int>(hits.size()) > k) hits.resize(k);
  return hits;
}

std::vector<ScoredDoc> TableIndex::SearchWand(
    const ScoringView& view, const std::vector<TermId>& terms, int k) const {
  const uint64_t bs = std::max<uint32_t>(1u, view.block_size);
  // Sentinel doc of an exhausted cursor; real ids are store indices and
  // never reach it. Sorts exhausted cursors to the back.
  constexpr TableId kDone = std::numeric_limits<TableId>::max();

  struct Cursor {
    TableId doc;           // view.docs[pos], cached; kDone at the end
    TermId term;
    uint64_t pos;          // current posting (absolute index)
    uint64_t end;          // term's posting range end
    uint64_t begin;        // term's posting range begin
    uint64_t block;        // current block (absolute index)
    uint64_t block_last;   // one past the current block's postings
    uint64_t block_begin;  // term's first block
    uint64_t block_end;    // term's block range end
    double term_max;       // per-term upper bound
  };
  std::vector<Cursor> cur;
  cur.reserve(terms.size());
  for (TermId t : terms) {
    if (static_cast<size_t>(t) >= view.num_terms) continue;
    const uint64_t begin = view.offsets[t];
    const uint64_t end = view.offsets[t + 1];
    if (begin == end) continue;
    Cursor c;
    c.doc = view.docs[begin];
    c.term = t;
    c.pos = begin;
    c.end = end;
    c.begin = begin;
    c.block = view.block_offsets[t];
    c.block_last = std::min(end, begin + bs);
    c.block_begin = view.block_offsets[t];
    c.block_end = view.block_offsets[t + 1];
    c.term_max = view.term_max[t];
    cur.push_back(c);
  }
  if (cur.empty()) return {};

  // Cursor order: current doc asc, ties by term id so that a pivot's
  // aligned cursors are consumed in ascending term order, matching the
  // exhaustive scorer's accumulation order bit for bit. Sorted once
  // here; every advance afterwards repairs the order incrementally (see
  // reinsert) — a from-scratch sort per iteration dominated the
  // scorer's runtime.
  auto before = [](const Cursor& a, const Cursor& b) {
    if (a.doc != b.doc) return a.doc < b.doc;
    return a.term < b.term;
  };
  std::sort(cur.begin(), cur.end(), before);

  // Min-heap of the current top-k: top() is the WORST kept hit under the
  // result order (score desc, id asc), i.e. the entry bar.
  std::priority_queue<ScoredDoc, std::vector<ScoredDoc>, BetterHitCmp> heap;
  const size_t want = static_cast<size_t>(k);

  // Advance one posting, maintaining the doc and block caches.
  auto advance_one = [&](Cursor* c) {
    if (++c->pos >= c->end) {
      c->doc = kDone;
      return;
    }
    if (c->pos >= c->block_last) {
      ++c->block;
      c->block_last = std::min(c->end, c->block_last + bs);
    }
    c->doc = view.docs[c->pos];
  };

  // NextGEQ: advance to the first posting with doc >= target, skipping
  // whole blocks via their last_doc. Callers only pass target > current
  // doc. `target` is 64-bit so last_doc + 1 cannot overflow.
  auto advance_geq = [&](Cursor* c, uint64_t target) {
    uint64_t blk = c->block;
    while (blk < c->block_end &&
           static_cast<uint64_t>(view.block_last[blk]) < target) {
      ++blk;
    }
    if (blk == c->block_end) {
      c->pos = c->end;
      c->doc = kDone;
      return;
    }
    // The block's last_doc >= target, so lower_bound lands inside it.
    const uint64_t block_first = c->begin + (blk - c->block_begin) * bs;
    const TableId* base = view.docs;
    const TableId* first = base + std::max(c->pos, block_first);
    const TableId* last = base + std::min(c->end, block_first + bs);
    c->pos = static_cast<uint64_t>(
        std::lower_bound(first, last, static_cast<TableId>(target)) - base);
    c->block = blk;
    c->block_last = std::min(c->end, block_first + bs);
    if (c->pos >= c->end) {
      // Unreachable for a well-formed layout (the block's last_doc >=
      // target), but unvalidated v4 doc values may be unsorted — stay
      // memory-safe and treat the cursor as exhausted.
      c->doc = kDone;
      return;
    }
    c->doc = view.docs[c->pos];
  };

  // Restore sorted order after the prefix [0, m) advanced: bubble each
  // advanced cursor forward into the still-sorted tail, back to front so
  // the region it moves through is already ordered. Advanced cursors
  // rarely travel far, so this is near-O(m) in practice. Exhausted
  // cursors carry the kDone sentinel, end up at the back, and are
  // popped.
  auto reinsert = [&](size_t m) {
    for (size_t i = m; i-- > 0;) {
      Cursor c = cur[i];
      size_t j = i;
      while (j + 1 < cur.size() && before(cur[j + 1], c)) {
        cur[j] = cur[j + 1];
        ++j;
      }
      cur[j] = c;
    }
    while (!cur.empty() && cur.back().doc == kDone) cur.pop_back();
  };

  while (!cur.empty()) {
    const bool full = heap.size() == want;
    const double threshold = full ? heap.top().score : 0.0;

    // Pivot: first prefix whose summed term upper bounds could still
    // enter the heap. Comparisons keep score == threshold alive — a tie
    // with a smaller doc id still displaces the current worst.
    double ub = 0.0;
    size_t pivot = cur.size();
    for (size_t i = 0; i < cur.size(); ++i) {
      ub += cur[i].term_max;
      if (!full || SafeUpper(ub) >= threshold) {
        pivot = i;
        break;
      }
    }
    if (pivot == cur.size()) break;  // no doc anywhere can enter

    const TableId pivot_doc = cur[pivot].doc;
    if (cur[0].doc == pivot_doc) {
      // All cursors up to (and possibly past) the pivot sit on
      // pivot_doc. Refine with block maxima before paying full scoring.
      size_t m = pivot + 1;
      while (m < cur.size() && cur[m].doc == pivot_doc) ++m;
      double block_ub = 0.0;
      for (size_t i = 0; i < m; ++i) {
        block_ub += view.block_max[cur[i].block];
      }
      if (full && SafeUpper(block_ub) < threshold) {
        // The current blocks cannot produce a qualifying doc: jump past
        // the nearest block boundary (or to the next cursor's doc).
        uint64_t target = UINT64_MAX;
        for (size_t i = 0; i < m; ++i) {
          target = std::min(
              target,
              static_cast<uint64_t>(view.block_last[cur[i].block]) + 1);
        }
        if (m < cur.size()) {
          target = std::min(target, static_cast<uint64_t>(cur[m].doc));
        }
        for (size_t i = 0; i < m; ++i) advance_geq(&cur[i], target);
      } else {
        // Full evaluation: one contribution per aligned cursor, summed
        // in ascending term order (the cursor order's tie-break).
        double s = 0.0;
        for (size_t i = 0; i < m; ++i) s += view.scores[cur[i].pos];
        const ScoredDoc hit{pivot_doc, s};
        if (!full) {
          heap.push(hit);
        } else if (BetterHit(hit, heap.top())) {
          heap.pop();
          heap.push(hit);
        }
        for (size_t i = 0; i < m; ++i) advance_one(&cur[i]);
      }
      reinsert(m);
    } else {
      // Cursors before the pivot are on smaller docs that cannot qualify
      // alone; skip the first one forward to the pivot doc.
      advance_geq(&cur[0], pivot_doc);
      reinsert(1);
    }
  }

  std::vector<ScoredDoc> hits(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    hits[i] = heap.top();
    heap.pop();
  }
  return hits;
}

std::vector<TableId> TableIndex::DocsWithTerm(
    TermId term, std::initializer_list<Field> fields) const {
  std::vector<TableId> out;
  for (Field field : fields) {
    postings_->AppendDocs(static_cast<int>(field), term, &out);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

namespace {
std::vector<TableId> IntersectSorted(const std::vector<TableId>& a,
                                     const std::vector<TableId>& b) {
  std::vector<TableId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}
}  // namespace

std::vector<TableId> TableIndex::MatchAllInHeaderOrContext(
    const std::vector<std::string>& keywords) const {
  std::vector<TermId> terms = QueryTerms(keywords, /*keep_unknown=*/true);
  if (terms.empty()) return {};
  std::vector<TableId> docs;
  bool first = true;
  for (TermId t : terms) {
    if (t == kInvalidTerm) return {};  // unknown term: no doc matches
    auto with = DocsWithTerm(t, {Field::kHeader, Field::kContext});
    docs = first ? std::move(with) : IntersectSorted(docs, with);
    first = false;
    if (docs.empty()) break;
  }
  return docs;
}

std::vector<TableId> TableIndex::MatchAllInContent(
    const std::vector<std::string>& keywords) const {
  std::vector<TermId> terms = QueryTerms(keywords, /*keep_unknown=*/true);
  if (terms.empty()) return {};
  std::vector<TableId> docs;
  bool first = true;
  for (TermId t : terms) {
    if (t == kInvalidTerm) return {};
    auto with = DocsWithTerm(t, {Field::kContent});
    docs = first ? std::move(with) : IntersectSorted(docs, with);
    first = false;
    if (docs.empty()) break;
  }
  return docs;
}

}  // namespace wwt
