#include "index/table_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace wwt {

TableIndex::TableIndex(IndexOptions options,
                       TokenizerOptions tokenizer_options)
    : options_(options), tokenizer_(tokenizer_options) {
  postings_.resize(kNumFields);
  field_len_.resize(kNumFields);
}

std::vector<TermId> TableIndex::TermsOf(const std::string& text) {
  return vocab_.InternAll(tokenizer_.Tokenize(text));
}

std::vector<TermId> TableIndex::QueryTerms(
    const std::vector<std::string>& keywords, bool keep_unknown) const {
  std::vector<TermId> out;
  for (const std::string& kw : keywords) {
    for (const std::string& tok : tokenizer_.Tokenize(kw)) {
      if (options_.drop_query_stopwords && Tokenizer::IsStopword(tok)) {
        continue;
      }
      auto id = vocab_.Find(tok);
      if (id) {
        out.push_back(*id);
      } else if (keep_unknown) {
        out.push_back(kInvalidTerm);
      }
    }
  }
  return out;
}

void TableIndex::Add(const WebTable& table) {
  const TableId doc = table.id;

  std::string header_text;
  for (const std::string& title : table.title_rows) {
    header_text += title;
    header_text += ' ';
  }
  for (const auto& row : table.header_rows) {
    for (const auto& cell : row) {
      header_text += cell;
      header_text += ' ';
    }
  }
  std::string context_text = table.ContextText();
  std::string content_text;
  for (const auto& row : table.body) {
    for (const auto& cell : row) {
      content_text += cell;
      content_text += ' ';
    }
  }

  const std::string* field_text[kNumFields] = {&header_text, &context_text,
                                               &content_text};
  std::vector<TermId> all_terms;
  for (int f = 0; f < kNumFields; ++f) {
    std::vector<TermId> terms = TermsOf(*field_text[f]);
    all_terms.insert(all_terms.end(), terms.begin(), terms.end());

    std::unordered_map<TermId, uint32_t> tf;
    for (TermId t : terms) ++tf[t];
    auto& field_postings = postings_[f];
    if (vocab_.size() > field_postings.size()) {
      field_postings.resize(vocab_.size());
    }
    for (const auto& [t, count] : tf) {
      // Ids are assigned in ascending order by the store, so postings
      // remain sorted by construction; enforced here.
      auto& plist = field_postings[t];
      WWT_CHECK(plist.empty() || plist.back().doc < doc)
          << "tables must be added in ascending id order";
      plist.push_back({doc, static_cast<float>(count)});
    }
    auto& lens = field_len_[f];
    if (doc >= lens.size()) lens.resize(doc + 1, 0);
    lens[doc] = static_cast<uint32_t>(terms.size());
  }
  idf_.AddDocument(all_terms);
  ++doc_count_;
}

std::vector<ScoredDoc> TableIndex::Search(
    const std::vector<std::string>& keywords, int k) const {
  std::vector<TermId> terms = QueryTerms(keywords);
  // Deduplicate query terms; repeated keywords should not double-count.
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());

  std::unordered_map<TableId, double> scores;
  for (TermId t : terms) {
    const double idf = idf_.Idf(t);
    for (int f = 0; f < kNumFields; ++f) {
      if (t >= postings_[f].size()) continue;
      for (const Posting& p : postings_[f][t]) {
        const double len = field_len_[f][p.doc] + 1.0;
        scores[p.doc] += options_.boosts[f] * std::sqrt(p.tf) * idf * idf /
                         std::sqrt(len);
      }
    }
  }
  std::vector<ScoredDoc> hits;
  hits.reserve(scores.size());
  for (const auto& [doc, score] : scores) hits.push_back({doc, score});
  std::sort(hits.begin(), hits.end(), [](const ScoredDoc& a,
                                         const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  });
  if (k >= 0 && static_cast<int>(hits.size()) > k) hits.resize(k);
  return hits;
}

std::vector<TableId> TableIndex::DocsWithTerm(
    TermId term, std::initializer_list<Field> fields) const {
  std::vector<TableId> out;
  for (Field field : fields) {
    const auto& field_postings = postings_[static_cast<int>(field)];
    if (term >= field_postings.size()) continue;
    for (const Posting& p : field_postings[term]) out.push_back(p.doc);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

namespace {
std::vector<TableId> IntersectSorted(const std::vector<TableId>& a,
                                     const std::vector<TableId>& b) {
  std::vector<TableId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}
}  // namespace

std::vector<TableId> TableIndex::MatchAllInHeaderOrContext(
    const std::vector<std::string>& keywords) const {
  std::vector<TermId> terms = QueryTerms(keywords, /*keep_unknown=*/true);
  if (terms.empty()) return {};
  std::vector<TableId> docs;
  bool first = true;
  for (TermId t : terms) {
    if (t == kInvalidTerm) return {};  // unknown term: no doc matches
    auto with = DocsWithTerm(t, {Field::kHeader, Field::kContext});
    docs = first ? std::move(with) : IntersectSorted(docs, with);
    first = false;
    if (docs.empty()) break;
  }
  return docs;
}

std::vector<TableId> TableIndex::MatchAllInContent(
    const std::vector<std::string>& keywords) const {
  std::vector<TermId> terms = QueryTerms(keywords, /*keep_unknown=*/true);
  if (terms.empty()) return {};
  std::vector<TableId> docs;
  bool first = true;
  for (TermId t : terms) {
    if (t == kInvalidTerm) return {};
    auto with = DocsWithTerm(t, {Field::kContent});
    docs = first ? std::move(with) : IntersectSorted(docs, with);
    first = false;
    if (docs.empty()) break;
  }
  return docs;
}

}  // namespace wwt
