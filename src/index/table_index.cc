#include "index/table_index.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace wwt {
namespace {

/// Relative slack applied to WAND upper bounds before comparing against
/// the heap threshold. Upper-bound sums and real document scores round
/// differently, so a mathematically valid bound could fall a few ulps
/// below an achievable score; inflating the bound by ~1e-9 relative
/// makes wrongful pruning impossible while costing nothing measurable in
/// skip power.
inline double SafeUpper(double x) { return x + x * 1e-9; }

/// The total order of search results: score desc, doc id asc.
inline bool BetterHit(const ScoredDoc& a, const ScoredDoc& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.doc < b.doc;
}

/// Heap comparator form of BetterHit (a struct inlines where a function
/// pointer would not).
struct BetterHitCmp {
  bool operator()(const ScoredDoc& a, const ScoredDoc& b) const {
    return BetterHit(a, b);
  }
};

}  // namespace

const char* ProbeScorerName(ProbeScorer scorer) {
  switch (scorer) {
    case ProbeScorer::kWand:
      return "wand";
    case ProbeScorer::kExhaustive:
      return "exhaustive";
  }
  return "unknown";
}

bool ParseProbeScorer(const std::string& name, ProbeScorer* out) {
  if (name == "wand") {
    *out = ProbeScorer::kWand;
    return true;
  }
  if (name == "exhaustive") {
    *out = ProbeScorer::kExhaustive;
    return true;
  }
  return false;
}

TableIndex::TableIndex(IndexOptions options,
                       TokenizerOptions tokenizer_options)
    : options_(options), tokenizer_(tokenizer_options) {
  postings_.resize(kNumFields);
  field_len_.resize(kNumFields);
}

std::vector<TermId> TableIndex::TermsOf(const std::string& text) {
  return vocab_.InternAll(tokenizer_.Tokenize(text));
}

std::vector<TermId> TableIndex::QueryTerms(
    const std::vector<std::string>& keywords, bool keep_unknown) const {
  std::vector<TermId> out;
  for (const std::string& kw : keywords) {
    for (const std::string& tok : tokenizer_.Tokenize(kw)) {
      if (options_.drop_query_stopwords && Tokenizer::IsStopword(tok)) {
        continue;
      }
      auto id = vocab_.Find(tok);
      if (id) {
        out.push_back(*id);
      } else if (keep_unknown) {
        out.push_back(kInvalidTerm);
      }
    }
  }
  return out;
}

void TableIndex::Add(const WebTable& table) {
  const TableId doc = table.id;

  std::string header_text;
  for (const std::string& title : table.title_rows) {
    header_text += title;
    header_text += ' ';
  }
  for (const auto& row : table.header_rows) {
    for (const auto& cell : row) {
      header_text += cell;
      header_text += ' ';
    }
  }
  std::string context_text = table.ContextText();
  std::string content_text;
  for (const auto& row : table.body) {
    for (const auto& cell : row) {
      content_text += cell;
      content_text += ' ';
    }
  }

  const std::string* field_text[kNumFields] = {&header_text, &context_text,
                                               &content_text};
  std::vector<TermId> all_terms;
  for (int f = 0; f < kNumFields; ++f) {
    std::vector<TermId> terms = TermsOf(*field_text[f]);
    all_terms.insert(all_terms.end(), terms.begin(), terms.end());

    std::unordered_map<TermId, uint32_t> tf;
    for (TermId t : terms) ++tf[t];
    auto& field_postings = postings_[f];
    if (vocab_.size() > field_postings.size()) {
      field_postings.resize(vocab_.size());
    }
    for (const auto& [t, count] : tf) {
      // Ids are assigned in ascending order by the store, so postings
      // remain sorted by construction; enforced here.
      auto& plist = field_postings[t];
      WWT_CHECK(plist.empty() || plist.back().doc < doc)
          << "tables must be added in ascending id order";
      plist.push_back({doc, static_cast<float>(count)});
    }
    auto& lens = field_len_[f];
    if (doc >= lens.size()) lens.resize(doc + 1, 0);
    lens[doc] = static_cast<uint32_t>(terms.size());
  }
  idf_.AddDocument(all_terms);
  ++doc_count_;
  // The merged scoring layout depends on postings, lengths and IDF; any
  // previously built layout is stale. Add() never overlaps queries (the
  // class contract), so dropping it here is race-free.
  if (scoring_ready_.load(std::memory_order_relaxed)) {
    scoring_ = ScoringLayout();
    scoring_ready_.store(false, std::memory_order_release);
  }
}

void TableIndex::FinishScoringLayout(ScoringLayout* layout) {
  const uint64_t bs = std::max<uint32_t>(1u, layout->block_size);
  const size_t nterms =
      layout->offsets.empty() ? 0 : layout->offsets.size() - 1;
  layout->blocks.clear();
  layout->block_offsets.clear();
  layout->block_offsets.reserve(nterms + 1);
  layout->block_offsets.push_back(0);
  layout->term_max.assign(nterms, 0.0);
  for (size_t t = 0; t < nterms; ++t) {
    const uint64_t begin = layout->offsets[t];
    const uint64_t end = layout->offsets[t + 1];
    double tmax = 0.0;
    for (uint64_t b = begin; b < end; b += bs) {
      const uint64_t be = std::min(end, b + bs);
      ScoringLayout::Block blk;
      blk.last_doc = layout->docs[be - 1];
      blk.max_score = 0.0;
      for (uint64_t i = b; i < be; ++i) {
        blk.max_score = std::max(blk.max_score, layout->scores[i]);
      }
      layout->blocks.push_back(blk);
      tmax = std::max(tmax, blk.max_score);
    }
    layout->term_max[t] = tmax;
    layout->block_offsets.push_back(layout->blocks.size());
  }
}

void TableIndex::EnsureScoringLayout() const {
  if (scoring_ready_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(scoring_mu_);
  if (scoring_ready_.load(std::memory_order_relaxed)) return;

  ScoringLayout layout;
  layout.block_size = std::max<uint32_t>(1u, options_.scoring_block_size);
  const size_t nterms = vocab_.size();
  layout.offsets.reserve(nterms + 1);
  layout.offsets.push_back(0);
  for (size_t t = 0; t < nterms; ++t) {
    const double idf = idf_.Idf(static_cast<TermId>(t));
    const double idf2 = idf * idf;
    const std::vector<Posting>* lists[kNumFields];
    size_t pos[kNumFields];
    for (int f = 0; f < kNumFields; ++f) {
      lists[f] = t < postings_[f].size() ? &postings_[f][t] : nullptr;
      pos[f] = 0;
    }
    // Merge the (doc-sorted) per-field lists; a doc's combined score is
    // its field contributions summed in field order, which both scorers
    // then consume as one value — the source of their bit-equality.
    for (;;) {
      TableId next = 0;
      bool any = false;
      for (int f = 0; f < kNumFields; ++f) {
        if (!lists[f] || pos[f] >= lists[f]->size()) continue;
        const TableId d = (*lists[f])[pos[f]].doc;
        if (!any || d < next) {
          next = d;
          any = true;
        }
      }
      if (!any) break;
      double s = 0.0;
      for (int f = 0; f < kNumFields; ++f) {
        if (!lists[f] || pos[f] >= lists[f]->size()) continue;
        const Posting& p = (*lists[f])[pos[f]];
        if (p.doc != next) continue;
        const double len = field_len_[f][p.doc] + 1.0;
        s += options_.boosts[f] * std::sqrt(p.tf) * idf2 / std::sqrt(len);
        ++pos[f];
      }
      layout.docs.push_back(next);
      layout.scores.push_back(s);
    }
    layout.offsets.push_back(layout.docs.size());
  }
  FinishScoringLayout(&layout);

  scoring_ = std::move(layout);
  scoring_ready_.store(true, std::memory_order_release);
}

std::vector<ScoredDoc> TableIndex::Search(
    const std::vector<std::string>& keywords, int k,
    ProbeScorer scorer) const {
  std::vector<TermId> terms = QueryTerms(keywords);
  // Deduplicate query terms; repeated keywords should not double-count.
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  if (terms.empty() || k == 0) return {};

  EnsureScoringLayout();
  if (scorer == ProbeScorer::kWand && k > 0) return SearchWand(terms, k);
  return SearchExhaustive(terms, k);
}

std::vector<ScoredDoc> TableIndex::SearchExhaustive(
    const std::vector<TermId>& terms, int k) const {
  const ScoringLayout& layout = scoring_;
  std::unordered_map<TableId, double> scores;
  for (TermId t : terms) {
    if (static_cast<size_t>(t) + 1 >= layout.offsets.size()) continue;
    const uint64_t end = layout.offsets[t + 1];
    for (uint64_t i = layout.offsets[t]; i < end; ++i) {
      scores[layout.docs[i]] += layout.scores[i];
    }
  }
  std::vector<ScoredDoc> hits;
  hits.reserve(scores.size());
  for (const auto& [doc, score] : scores) hits.push_back({doc, score});
  std::sort(hits.begin(), hits.end(), BetterHit);
  if (k >= 0 && static_cast<int>(hits.size()) > k) hits.resize(k);
  return hits;
}

std::vector<ScoredDoc> TableIndex::SearchWand(
    const std::vector<TermId>& terms, int k) const {
  const ScoringLayout& layout = scoring_;
  const uint64_t bs = std::max<uint32_t>(1u, layout.block_size);
  // Sentinel doc of an exhausted cursor; real ids are store indices and
  // never reach it. Sorts exhausted cursors to the back.
  constexpr TableId kDone = std::numeric_limits<TableId>::max();

  struct Cursor {
    TableId doc;           // layout.docs[pos], cached; kDone at the end
    TermId term;
    uint64_t pos;          // current posting (absolute index)
    uint64_t end;          // term's posting range end
    uint64_t begin;        // term's posting range begin
    uint64_t block;        // current block (absolute index)
    uint64_t block_last;   // one past the current block's postings
    uint64_t block_begin;  // term's first block
    uint64_t block_end;    // term's block range end
    double term_max;       // per-term upper bound
  };
  std::vector<Cursor> cur;
  cur.reserve(terms.size());
  for (TermId t : terms) {
    if (static_cast<size_t>(t) + 1 >= layout.offsets.size()) continue;
    const uint64_t begin = layout.offsets[t];
    const uint64_t end = layout.offsets[t + 1];
    if (begin == end) continue;
    Cursor c;
    c.doc = layout.docs[begin];
    c.term = t;
    c.pos = begin;
    c.end = end;
    c.begin = begin;
    c.block = layout.block_offsets[t];
    c.block_last = std::min(end, begin + bs);
    c.block_begin = layout.block_offsets[t];
    c.block_end = layout.block_offsets[t + 1];
    c.term_max = layout.term_max[t];
    cur.push_back(c);
  }
  if (cur.empty()) return {};

  // Cursor order: current doc asc, ties by term id so that a pivot's
  // aligned cursors are consumed in ascending term order, matching the
  // exhaustive scorer's accumulation order bit for bit. Sorted once
  // here; every advance afterwards repairs the order incrementally (see
  // reinsert) — a from-scratch sort per iteration dominated the
  // scorer's runtime.
  auto before = [](const Cursor& a, const Cursor& b) {
    if (a.doc != b.doc) return a.doc < b.doc;
    return a.term < b.term;
  };
  std::sort(cur.begin(), cur.end(), before);

  // Min-heap of the current top-k: top() is the WORST kept hit under the
  // result order (score desc, id asc), i.e. the entry bar.
  std::priority_queue<ScoredDoc, std::vector<ScoredDoc>, BetterHitCmp> heap;
  const size_t want = static_cast<size_t>(k);

  // Advance one posting, maintaining the doc and block caches.
  auto advance_one = [&](Cursor* c) {
    if (++c->pos >= c->end) {
      c->doc = kDone;
      return;
    }
    if (c->pos >= c->block_last) {
      ++c->block;
      c->block_last = std::min(c->end, c->block_last + bs);
    }
    c->doc = layout.docs[c->pos];
  };

  // NextGEQ: advance to the first posting with doc >= target, skipping
  // whole blocks via their last_doc. Callers only pass target > current
  // doc. `target` is 64-bit so last_doc + 1 cannot overflow.
  auto advance_geq = [&](Cursor* c, uint64_t target) {
    uint64_t blk = c->block;
    while (blk < c->block_end &&
           static_cast<uint64_t>(layout.blocks[blk].last_doc) < target) {
      ++blk;
    }
    if (blk == c->block_end) {
      c->pos = c->end;
      c->doc = kDone;
      return;
    }
    // The block's last_doc >= target, so lower_bound lands inside it.
    const uint64_t block_first = c->begin + (blk - c->block_begin) * bs;
    const TableId* base = layout.docs.data();
    const TableId* first = base + std::max(c->pos, block_first);
    const TableId* last = base + std::min(c->end, block_first + bs);
    c->pos = static_cast<uint64_t>(
        std::lower_bound(first, last, static_cast<TableId>(target)) - base);
    c->block = blk;
    c->block_last = std::min(c->end, block_first + bs);
    c->doc = layout.docs[c->pos];
  };

  // Restore sorted order after the prefix [0, m) advanced: bubble each
  // advanced cursor forward into the still-sorted tail, back to front so
  // the region it moves through is already ordered. Advanced cursors
  // rarely travel far, so this is near-O(m) in practice. Exhausted
  // cursors carry the kDone sentinel, end up at the back, and are
  // popped.
  auto reinsert = [&](size_t m) {
    for (size_t i = m; i-- > 0;) {
      Cursor c = cur[i];
      size_t j = i;
      while (j + 1 < cur.size() && before(cur[j + 1], c)) {
        cur[j] = cur[j + 1];
        ++j;
      }
      cur[j] = c;
    }
    while (!cur.empty() && cur.back().doc == kDone) cur.pop_back();
  };

  while (!cur.empty()) {
    const bool full = heap.size() == want;
    const double threshold = full ? heap.top().score : 0.0;

    // Pivot: first prefix whose summed term upper bounds could still
    // enter the heap. Comparisons keep score == threshold alive — a tie
    // with a smaller doc id still displaces the current worst.
    double ub = 0.0;
    size_t pivot = cur.size();
    for (size_t i = 0; i < cur.size(); ++i) {
      ub += cur[i].term_max;
      if (!full || SafeUpper(ub) >= threshold) {
        pivot = i;
        break;
      }
    }
    if (pivot == cur.size()) break;  // no doc anywhere can enter

    const TableId pivot_doc = cur[pivot].doc;
    if (cur[0].doc == pivot_doc) {
      // All cursors up to (and possibly past) the pivot sit on
      // pivot_doc. Refine with block maxima before paying full scoring.
      size_t m = pivot + 1;
      while (m < cur.size() && cur[m].doc == pivot_doc) ++m;
      double block_ub = 0.0;
      for (size_t i = 0; i < m; ++i) {
        block_ub += layout.blocks[cur[i].block].max_score;
      }
      if (full && SafeUpper(block_ub) < threshold) {
        // The current blocks cannot produce a qualifying doc: jump past
        // the nearest block boundary (or to the next cursor's doc).
        uint64_t target = UINT64_MAX;
        for (size_t i = 0; i < m; ++i) {
          target = std::min(
              target,
              static_cast<uint64_t>(layout.blocks[cur[i].block].last_doc) + 1);
        }
        if (m < cur.size()) {
          target = std::min(target, static_cast<uint64_t>(cur[m].doc));
        }
        for (size_t i = 0; i < m; ++i) advance_geq(&cur[i], target);
      } else {
        // Full evaluation: one contribution per aligned cursor, summed
        // in ascending term order (the cursor order's tie-break).
        double s = 0.0;
        for (size_t i = 0; i < m; ++i) s += layout.scores[cur[i].pos];
        const ScoredDoc hit{pivot_doc, s};
        if (!full) {
          heap.push(hit);
        } else if (BetterHit(hit, heap.top())) {
          heap.pop();
          heap.push(hit);
        }
        for (size_t i = 0; i < m; ++i) advance_one(&cur[i]);
      }
      reinsert(m);
    } else {
      // Cursors before the pivot are on smaller docs that cannot qualify
      // alone; skip the first one forward to the pivot doc.
      advance_geq(&cur[0], pivot_doc);
      reinsert(1);
    }
  }

  std::vector<ScoredDoc> hits(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    hits[i] = heap.top();
    heap.pop();
  }
  return hits;
}

std::vector<TableId> TableIndex::DocsWithTerm(
    TermId term, std::initializer_list<Field> fields) const {
  std::vector<TableId> out;
  for (Field field : fields) {
    const auto& field_postings = postings_[static_cast<int>(field)];
    if (term >= field_postings.size()) continue;
    for (const Posting& p : field_postings[term]) out.push_back(p.doc);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

namespace {
std::vector<TableId> IntersectSorted(const std::vector<TableId>& a,
                                     const std::vector<TableId>& b) {
  std::vector<TableId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}
}  // namespace

std::vector<TableId> TableIndex::MatchAllInHeaderOrContext(
    const std::vector<std::string>& keywords) const {
  std::vector<TermId> terms = QueryTerms(keywords, /*keep_unknown=*/true);
  if (terms.empty()) return {};
  std::vector<TableId> docs;
  bool first = true;
  for (TermId t : terms) {
    if (t == kInvalidTerm) return {};  // unknown term: no doc matches
    auto with = DocsWithTerm(t, {Field::kHeader, Field::kContext});
    docs = first ? std::move(with) : IntersectSorted(docs, with);
    first = false;
    if (docs.empty()) break;
  }
  return docs;
}

std::vector<TableId> TableIndex::MatchAllInContent(
    const std::vector<std::string>& keywords) const {
  std::vector<TermId> terms = QueryTerms(keywords, /*keep_unknown=*/true);
  if (terms.empty()) return {};
  std::vector<TableId> docs;
  bool first = true;
  for (TermId t : terms) {
    if (t == kInvalidTerm) return {};
    auto with = DocsWithTerm(t, {Field::kContent});
    docs = first ? std::move(with) : IntersectSorted(docs, with);
    first = false;
    if (docs.empty()) break;
  }
  return docs;
}

}  // namespace wwt
