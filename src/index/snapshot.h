// Copyright 2026 The WWT Authors
//
// Persistent index snapshots: one versioned binary `.wwtsnap` file holds
// the full retrieval state of a built corpus — TableStore records,
// TableIndex postings and field statistics, Vocabulary, IdfDictionary —
// plus the ground truth and resolved workload the evaluation harness
// needs. This is the offline/online split of the paper's deployment
// (§2.1 builds the Lucene index over 25M tables once, then serves
// queries against the frozen artifact): `tools/wwt_indexer` writes the
// snapshot, `tools/wwt_serve` and the benches load it, and cold start
// becomes a file read instead of a corpus rebuild.
//
// Format (see docs/SNAPSHOTS.md for the layout in full):
//   [magic "WWTSNAP\n"][u32 version][u32 flags]
//   [u64 payload size][u64 payload FNV-1a checksum][payload]
// The payload is a sequence of tagged sections; unknown sections are
// skipped (forward-compatible additions), any layout change to an
// existing section bumps kSnapshotFormatVersion and old files are
// rejected with a clean Status.

#ifndef WWT_INDEX_SNAPSHOT_H_
#define WWT_INDEX_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/corpus_generator.h"
#include "util/serde.h"
#include "util/status.h"
#include "util/statusor.h"

namespace wwt {

/// Bump on ANY change to the header or a section layout. Loaders accept
/// [kMinSnapshotFormatVersion, kSnapshotFormatVersion] and reject the
/// rest; CI cache keys embed this constant.
/// v2: STOR section carries the store's first table id, so one snapshot
/// can hold a contiguous shard of a larger corpus (tables keep their
/// global ids across sharding).
/// v3: INDX section appends the merged block-max scoring layout (per-term
/// doc/score CSR arrays + block size) so serving skips the one-time
/// layout build; v2 files still load and rebuild it lazily on the first
/// Search().
/// v4: zero-copy layout. STOR and INDX store 8-byte-aligned offset
/// tables and raw arrays (store records, vocabulary, df table, docs-only
/// varint postings, full scoring layout including block metadata) that
/// the loader reads IN PLACE from the file mapping — no per-element
/// decode, no heap materialization, no payload checksum pass (the
/// header checksum is computed at save time and serves as the content
/// hash; load validates structure in O(#terms)). A v4 corpus is
/// immutable and pins its mapping via Corpus::mapping. v2/v3 files
/// still load the materialized way.
inline constexpr uint32_t kSnapshotFormatVersion = 4;

/// Oldest format this build still loads (v2 lacks only the precomputed
/// scoring layout, which TableIndex rebuilds on demand).
inline constexpr uint32_t kMinSnapshotFormatVersion = 2;

/// First 8 bytes of every snapshot file.
inline constexpr char kSnapshotMagic[8] = {'W', 'W', 'T', 'S',
                                           'N', 'A', 'P', '\n'};

/// One payload section as seen by InspectSnapshot.
struct SnapshotSection {
  /// Four-character section tag ("META", "STOR", ...).
  std::string tag;
  /// Body bytes (excluding the tag + size framing).
  uint64_t bytes = 0;
};

/// Header + META facts about a snapshot, cheap to read (InspectSnapshot
/// parses only the fixed header and the META section).
struct SnapshotInfo {
  uint32_t format_version = 0;
  /// FNV-1a checksum of the payload — the artifact's content hash, used
  /// for cache keys (a shard or query-cache key is derived from it).
  uint64_t content_hash = 0;
  uint64_t file_bytes = 0;

  /// Generation parameters the corpus was built with.
  uint64_t seed = 0;
  double scale = 1.0;
  int32_t noise_pages = 0;
  /// Fingerprint of the workload specs (detects custom workloads).
  uint64_t workload_hash = 0;

  uint64_t num_tables = 0;
  uint64_t num_queries = 0;
  uint64_t num_terms = 0;

  /// Per-section byte sizes in file order (filled by InspectSnapshot;
  /// left empty by the load/save paths).
  std::vector<SnapshotSection> sections;
};

/// Serializes `corpus` (built with `options`) to `path`, creating parent
/// directories as needed. The write is atomic (tmp file + rename). On
/// success `info` (when non-null) is filled from the in-memory state —
/// no read-back of the file.
[[nodiscard]] Status SaveSnapshot(const Corpus& corpus, const CorpusOptions& options,
                    const std::string& path, SnapshotInfo* info = nullptr);

/// SaveSnapshot pinned to an older (still-loadable) format version —
/// how the v2 backward-compatibility tests mint v2 files, and an escape
/// hatch for serving fleets mid-upgrade. `format_version` must lie in
/// [kMinSnapshotFormatVersion, kSnapshotFormatVersion].
[[nodiscard]] Status SaveSnapshotAtVersion(const Corpus& corpus,
                             const CorpusOptions& options,
                             const std::string& path,
                             uint32_t format_version,
                             SnapshotInfo* info = nullptr);

/// Loads a snapshot written by SaveSnapshot. The file is memory-mapped
/// when possible. Fails with a clean Status on missing file (IOError),
/// bad magic / checksum / truncation (Corruption), or a format version
/// mismatch (InvalidArgument) — never crashes on garbage input.
[[nodiscard]] StatusOr<Corpus> LoadSnapshot(const std::string& path,
                              SnapshotInfo* info = nullptr);

/// LoadSnapshot from an already-open file — the single-open path for
/// callers that have sniffed or validated the file themselves (the
/// OpenCorpus facade and CorpusHandle). `path` is used in error
/// messages only. A v4 corpus takes ownership of the mapping
/// (Corpus::mapping); v2/v3 corpora materialize and drop it.
[[nodiscard]] StatusOr<Corpus> LoadSnapshot(serde::InputFile file, const std::string& path,
                              SnapshotInfo* info = nullptr);

/// Reads header + META without decoding the store/index sections (the
/// payload checksum is still verified, so the whole file is read once).
[[nodiscard]] StatusOr<SnapshotInfo> InspectSnapshot(const std::string& path);

/// Fingerprint of a workload spec list (order-sensitive), stored in META
/// so BuildOrLoad can tell a custom workload from the Table 1 default.
uint64_t WorkloadFingerprint(const CorpusOptions& options);

/// Outcome of BuildOrLoadCorpus.
struct BuildOrLoadResult {
  Corpus corpus;
  /// Default-initialized (format_version == 0) when no snapshot file
  /// backs the corpus: empty path, or the save failed (warned, not
  /// fatal — the in-memory corpus is still valid).
  SnapshotInfo info;
  /// True when the corpus came from the snapshot file; false when it was
  /// generated (and, if a path was given, saved).
  bool loaded = false;
  /// Wall seconds of the load or of the generate(+save).
  double seconds = 0;
  /// Wall seconds of GenerateCorpus alone (0 when loaded) — the
  /// unbiased "rebuild" side of cold-start comparisons, excluding the
  /// snapshot save.
  double generate_seconds = 0;
};

/// Loads `path` when it exists and matches (format version AND the
/// generation parameters seed/scale/noise_pages/workload); otherwise
/// generates the corpus with `options` and — when `path` is non-empty —
/// saves the snapshot for the next run. Never fails: a stale or corrupt
/// file is rebuilt and overwritten, and a failed save (read-only path,
/// full disk) is only a warning — the freshly built corpus is returned
/// either way (`info.format_version == 0` records that no file backs
/// it). An empty `path` always generates and never touches the
/// filesystem.
BuildOrLoadResult BuildOrLoadCorpus(const CorpusOptions& options,
                                    const std::string& path);

/// The WWT_SNAPSHOT environment knob: snapshot path benches/examples
/// route through BuildOrLoadCorpus ("" when unset).
std::string SnapshotPathFromEnv();

// ---------------------------------------------------------------------------
// Sharded corpora: a `.wwtset` manifest describing 1..N `.wwtsnap` shards.
//
// `wwt_indexer --shards N` partitions a built corpus into N contiguous,
// count-balanced table-id ranges. Every shard snapshot carries the
// GLOBAL vocabulary and IDF statistics computed before partitioning (so
// per-shard retrieval scores are comparable and a merged candidate list
// is byte-identical to the unsharded engine's), its own slice of the
// store/postings/ground-truth, and the full resolved workload. The
// manifest records shard file names (relative to its own directory),
// per-shard content hashes and id ranges, and the set-level hash that
// becomes the fingerprint/cache-key corpus component.

/// Bump on ANY change to the manifest layout.
inline constexpr uint32_t kSetFormatVersion = 1;

/// First 8 bytes of every `.wwtset` manifest file.
inline constexpr char kSetMagic[8] = {'W', 'W', 'T', 'S',
                                      'E', 'T', '1', '\n'};

/// One shard as recorded in a manifest.
struct ShardManifestEntry {
  /// Shard file name, relative to the manifest's directory.
  std::string file;
  /// The shard snapshot's content hash (SnapshotInfo::content_hash);
  /// verified against the loaded file, so a rebuilt or swapped shard is
  /// a clean Corruption error, never a silently mixed set.
  uint64_t content_hash = 0;
  /// The contiguous global table-id range [first_table_id,
  /// first_table_id + num_tables) this shard holds.
  uint64_t first_table_id = 0;
  uint64_t num_tables = 0;
};

/// A parsed `.wwtset` manifest.
struct SetManifest {
  uint32_t format_version = 0;
  /// SetContentHash over the shard hashes in order — the corpus
  /// component of every fingerprint/cache key served from this set.
  uint64_t set_hash = 0;
  /// Generation parameters, mirrored from the shard METAs.
  uint64_t seed = 0;
  double scale = 1.0;
  int32_t noise_pages = 0;
  uint64_t workload_hash = 0;
  /// Total tables across all shards.
  uint64_t num_tables = 0;
  std::vector<ShardManifestEntry> shards;
};

/// The set-level content hash: for one shard, the shard's own hash (so a
/// 1-shard manifest fingerprints identically to serving the plain
/// snapshot); otherwise an order-sensitive fold of the shard hashes.
uint64_t SetContentHash(const std::vector<uint64_t>& shard_hashes);

/// Splits `corpus` into `num_shards` (clamped to [1, #tables]) shard
/// corpora over contiguous, count-balanced table-id ranges. Each shard
/// keeps global table ids (TableStore::first_id), the global vocabulary
/// and IDF statistics, its slice of the ground truth, and the full
/// resolved workload. Deterministic: the same corpus always yields the
/// same shards. Shard `kb` is left null (serving never consults it).
std::vector<Corpus> PartitionCorpus(const Corpus& corpus, int num_shards);

/// PartitionCorpus + one SaveSnapshot per shard + the manifest, written
/// atomically next to the shards. `manifest_path` should end in
/// `.wwtset`; shard files are derived from it
/// (`base.shard-I-of-N.wwtsnap`). On success `manifest` (when non-null)
/// is filled from the written state.
///
/// `file_tag` (0 = none) is folded into the shard file names
/// (`base.gTAG.shard-I-of-N.wwtsnap`) so a re-save over a live set never
/// overwrites the shard files its current manifest points at: the
/// atomic manifest rename is the commit point, and a crash mid-save
/// leaves the old set fully intact instead of a manifest whose shard
/// hashes no longer match. The background merge tags every save with
/// its delta generation (docs/FRESHNESS.md).
[[nodiscard]] Status SaveShardedSnapshot(const Corpus& corpus, const CorpusOptions& options,
                           const std::string& manifest_path, int num_shards,
                           SetManifest* manifest = nullptr,
                           uint64_t file_tag = 0);

/// Parses a `.wwtset` manifest (header + entries; shard files are not
/// opened). Clean Status on missing/corrupt/version-mismatched input.
[[nodiscard]] StatusOr<SetManifest> LoadSetManifest(const std::string& path);

/// Resolves a ShardManifestEntry::file against the manifest's directory
/// (absolute entries pass through) — the one definition every manifest
/// consumer resolves shard paths with.
std::string ResolveShardPath(const std::string& manifest_path,
                             const std::string& file);

/// True when `path` exists and starts with the `.wwtset` magic — the
/// cheap sniff tools use to route a path to the manifest or snapshot
/// loader.
bool IsSetManifest(const std::string& path);

}  // namespace wwt

#endif  // WWT_INDEX_SNAPSHOT_H_
