// Copyright 2026 The WWT Authors
//
// Fielded inverted index over web tables — the stand-in for the paper's
// Lucene deployment (§2.1): each table is a document with three text
// fields (header, context, content) carrying boosts 2.0 / 1.5 / 1.0.
//
// Two probe styles are exposed:
//  * Search(): disjunctive boosted TF-IDF top-k — the §2.2.1 index probes.
//    Served by either a block-max WAND scorer (default; skips postings
//    that cannot enter the top-k) or the exhaustive reference scorer —
//    both run over the same merged scoring layout and return bit-identical
//    results (see docs/RETRIEVAL.md).
//  * MatchAllIn*(): conjunctive doc-id sets — the building blocks of the
//    PMI^2 corpus statistic (§3.2.3), where H(Q) is the set of tables
//    matching Q in header-or-context and B(cell) the set matching the
//    cell words in content.

#ifndef WWT_INDEX_TABLE_INDEX_H_
#define WWT_INDEX_TABLE_INDEX_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "table/web_table.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace wwt {

class SnapshotCodec;

/// The three indexed fields.
enum class Field : int { kHeader = 0, kContext = 1, kContent = 2 };
inline constexpr int kNumFields = 3;

/// Which top-k algorithm Search() runs. Both produce identical results
/// (same docs, bit-identical scores, same (score desc, id asc) order);
/// kWand skips work, kExhaustive is the plain reference loop kept for
/// equivalence testing and perf comparison.
enum class ProbeScorer : int {
  kWand = 0,
  kExhaustive = 1,
};

/// "wand" / "exhaustive" (for logs, bench stamps and CLI flags).
const char* ProbeScorerName(ProbeScorer scorer);
/// Inverse of ProbeScorerName; false if `name` matches neither.
bool ParseProbeScorer(const std::string& name, ProbeScorer* out);

struct IndexOptions {
  /// Per-field boosts, §2.1: header 2.0, context 1.5, content 1.0.
  double boosts[kNumFields] = {2.0, 1.5, 1.0};
  /// Drop stopwords from probe keywords ("mountains IN north america").
  bool drop_query_stopwords = true;
  /// Postings per scoring block (block-max WAND skip granularity). Small
  /// blocks skip more precisely but cost more block-max lookups; 64-128
  /// is the classic sweet spot. Must be >= 1.
  uint32_t scoring_block_size = 128;
};

/// A search hit.
struct ScoredDoc {
  TableId doc = 0;
  double score = 0;
};

/// The corpus-wide read surface the mapping layers consult: tokenizer,
/// vocabulary and IDF statistics plus the conjunctive doc-set probes of
/// the PMI^2 feature (§3.2.3). TableIndex implements it over one index;
/// CorpusSet::stats() implements it over a sharded corpus by unioning
/// the per-shard doc sets under the shared global statistics — so the
/// query parser, candidate builder and column mapper are shard-agnostic
/// and score identically whether the corpus is one index or many.
class CorpusStats {
 public:
  virtual ~CorpusStats() = default;

  virtual const Tokenizer& tokenizer() const = 0;
  virtual const Vocabulary& vocab() const = 0;
  /// Corpus-wide IDF statistics (document = one table, all fields). For
  /// a shard of a CorpusSet these are the GLOBAL statistics computed
  /// before partitioning, not per-shard counts.
  virtual const IdfDictionary& idf() const = 0;
  virtual size_t num_docs() const = 0;

  /// Sorted ids of docs whose header+context fields contain ALL of
  /// `keywords` (after tokenization).
  virtual std::vector<TableId> MatchAllInHeaderOrContext(
      const std::vector<std::string>& keywords) const = 0;

  /// Sorted ids of docs whose content field contains ALL of `keywords`.
  virtual std::vector<TableId> MatchAllInContent(
      const std::vector<std::string>& keywords) const = 0;
};

/// Append-only in-memory inverted index. Build once, then query from any
/// number of threads: Search()/MatchAllIn*()/idf()/vocab() are pure
/// reads with no hidden mutable state beyond the lazily built scoring
/// layout, whose one-time construction is guarded by a mutex + released
/// atomic (audited for the batch query runner). Add() must not overlap
/// queries.
class TableIndex : public CorpusStats {
 public:
  explicit TableIndex(IndexOptions options = {},
                      TokenizerOptions tokenizer_options = {});

  /// Indexes a table under table.id. Title rows are indexed as header
  /// text (they describe the table, not a specific column, but the paper
  /// treats title as a header-adjacent part).
  void Add(const WebTable& table);

  /// Disjunctive boosted TF-IDF search; returns up to `k` docs by
  /// descending score (ties broken by ascending id). k < 0 returns all
  /// matching docs (always via the exhaustive path — WAND's pruning
  /// needs a finite heap).
  std::vector<ScoredDoc> Search(const std::vector<std::string>& keywords,
                                int k,
                                ProbeScorer scorer = ProbeScorer::kWand) const;

  /// Sorted ids of docs whose header+context fields contain ALL of
  /// `keywords` (after tokenization).
  std::vector<TableId> MatchAllInHeaderOrContext(
      const std::vector<std::string>& keywords) const override;

  /// Sorted ids of docs whose content field contains ALL of `keywords`.
  std::vector<TableId> MatchAllInContent(
      const std::vector<std::string>& keywords) const override;

  /// Corpus-wide IDF statistics (document = one table, all fields). On a
  /// CorpusSet shard these are the global pre-partition statistics.
  const IdfDictionary& idf() const override { return idf_; }
  const Vocabulary& vocab() const override { return vocab_; }
  const Tokenizer& tokenizer() const override { return tokenizer_; }

  size_t num_docs() const override { return doc_count_; }

  const IndexOptions& options() const { return options_; }

 private:
  /// Snapshot save/load (src/index/snapshot.cc) serializes the private
  /// postings/field-stats/scoring-layout state directly.
  friend class SnapshotCodec;

  struct Posting {
    TableId doc;
    float tf;
  };

  /// Per-(term, doc) scoring data merged across the three fields, laid
  /// out CSR-style for the probe hot loop: term t's postings live at
  /// [offsets[t], offsets[t+1]) of the parallel docs/scores arrays, cut
  /// into blocks of `block_size` whose per-block score maxima drive the
  /// WAND skips. scores[i] is the doc's FULL contribution for the term
  /// (boost * sqrt(tf) * idf^2 / sqrt(len+1), summed over the fields in
  /// field order) — so a document's total score is a sum of one value
  /// per query term, in ascending term order, for BOTH scorers.
  struct ScoringLayout {
    uint32_t block_size = 128;
    /// Size vocab+1; offsets into docs/scores.
    std::vector<uint64_t> offsets;
    std::vector<TableId> docs;
    std::vector<double> scores;
    /// Size vocab+1; offsets into blocks. Term t's block j covers
    /// postings [offsets[t] + j*block_size, min(offsets[t] + (j+1)*
    /// block_size, offsets[t+1])).
    std::vector<uint64_t> block_offsets;
    struct Block {
      TableId last_doc = 0;   // max doc id in the block
      double max_score = 0;   // max contribution in the block
    };
    std::vector<Block> blocks;
    /// Per-term max contribution (max over the term's blocks).
    std::vector<double> term_max;
  };

  /// Tokenizes and interns, returning term ids (unknown terms are
  /// interned too — the vocabulary is owned here).
  std::vector<TermId> TermsOf(const std::string& text);
  /// Lookup-only variant for queries.
  std::vector<TermId> QueryTerms(const std::vector<std::string>& keywords,
                                 bool keep_unknown = false) const;

  /// Sorted doc ids containing term in any of `fields`.
  std::vector<TableId> DocsWithTerm(TermId term,
                                    std::initializer_list<Field> fields) const;

  /// Builds the merged scoring layout on first use (thread-safe; Search
  /// is const and concurrent). Snapshot load installs a prebuilt layout
  /// instead; Add() invalidates it.
  void EnsureScoringLayout() const;
  /// Recomputes block boundaries, block maxima and term maxima from
  /// scoring_.docs/scores/offsets + block_size (used by the builder and
  /// by snapshot load, which deserializes only the primary arrays).
  static void FinishScoringLayout(ScoringLayout* layout);

  /// Top-k over the merged layout, every posting of every query term.
  std::vector<ScoredDoc> SearchExhaustive(const std::vector<TermId>& terms,
                                          int k) const;
  /// Block-max WAND top-k over the merged layout.
  std::vector<ScoredDoc> SearchWand(const std::vector<TermId>& terms,
                                    int k) const;

  IndexOptions options_;
  Tokenizer tokenizer_;
  Vocabulary vocab_;
  IdfDictionary idf_;
  size_t doc_count_ = 0;

  /// postings_[field][term] -> postings sorted by doc id (insertion order
  /// is ascending because ids are assigned ascending).
  std::vector<std::vector<std::vector<Posting>>> postings_;
  /// Field lengths (in tokens) per doc, for length normalization.
  std::vector<std::vector<uint32_t>> field_len_;

  /// Lazily built from postings_/field_len_/idf_ (or installed by
  /// snapshot load). scoring_ready_ is set with release order after the
  /// layout is complete; readers check it with acquire order, so a true
  /// read guarantees visibility of the layout without taking the mutex.
  mutable ScoringLayout scoring_;
  mutable std::atomic<bool> scoring_ready_{false};
  mutable std::mutex scoring_mu_;
};

}  // namespace wwt

#endif  // WWT_INDEX_TABLE_INDEX_H_
