// Copyright 2026 The WWT Authors
//
// Fielded inverted index over web tables — the stand-in for the paper's
// Lucene deployment (§2.1): each table is a document with three text
// fields (header, context, content) carrying boosts 2.0 / 1.5 / 1.0.
//
// Two probe styles are exposed:
//  * Search(): disjunctive boosted TF-IDF top-k — the §2.2.1 index probes.
//    Served by either a block-max WAND scorer (default; skips postings
//    that cannot enter the top-k) or the exhaustive reference scorer —
//    both run over the same merged scoring layout and return bit-identical
//    results (see docs/RETRIEVAL.md).
//  * MatchAllIn*(): conjunctive doc-id sets — the building blocks of the
//    PMI^2 corpus statistic (§3.2.3), where H(Q) is the set of tables
//    matching Q in header-or-context and B(cell) the set matching the
//    cell words in content.
//
// Storage sits behind a PostingsSource: heap vectors while building (or
// after loading a materialized v2/v3 snapshot), or varint-compressed
// blobs read in place from a memory-mapped v4 snapshot. The scorers run
// over a ScoringView of raw arrays that points at either the heap
// layout or the mapping — the algorithms never know which.

#ifndef WWT_INDEX_TABLE_INDEX_H_
#define WWT_INDEX_TABLE_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "table/web_table.h"
#include "text/tfidf.h"
#include "util/thread_annotations.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace wwt {

class SnapshotCodec;

/// The three indexed fields.
enum class Field : int { kHeader = 0, kContext = 1, kContent = 2 };
inline constexpr int kNumFields = 3;

/// Which top-k algorithm Search() runs. Both produce identical results
/// (same docs, bit-identical scores, same (score desc, id asc) order);
/// kWand skips work, kExhaustive is the plain reference loop kept for
/// equivalence testing and perf comparison.
enum class ProbeScorer : int {
  kWand = 0,
  kExhaustive = 1,
};

/// "wand" / "exhaustive" (for logs, bench stamps and CLI flags).
const char* ProbeScorerName(ProbeScorer scorer);
/// Inverse of ProbeScorerName; false if `name` matches neither.
bool ParseProbeScorer(const std::string& name, ProbeScorer* out);

struct IndexOptions {
  /// Per-field boosts, §2.1: header 2.0, context 1.5, content 1.0.
  double boosts[kNumFields] = {2.0, 1.5, 1.0};
  /// Drop stopwords from probe keywords ("mountains IN north america").
  bool drop_query_stopwords = true;
  /// Postings per scoring block (block-max WAND skip granularity). Small
  /// blocks skip more precisely but cost more block-max lookups; 64-128
  /// is the classic sweet spot. Must be >= 1.
  uint32_t scoring_block_size = 128;
};

/// A search hit.
struct ScoredDoc {
  TableId doc = 0;
  double score = 0;
};

/// One (doc, tf) posting of the build-mode per-field lists.
struct Posting {
  TableId doc;
  float tf;
};

/// Read surface over the per-field conjunctive postings (the MatchAll*
/// building block). Implementations: HeapPostingsSource (build mode)
/// and MappedPostingsSource (varint-delta blobs read in place from a
/// v4 snapshot mapping).
class PostingsSource {
 public:
  virtual ~PostingsSource() = default;

  /// Terms with a (possibly empty) posting list in `field`.
  virtual size_t NumTerms(int field) const = 0;
  /// Appends the ascending doc ids whose `field` contains `term`.
  virtual void AppendDocs(int field, TermId term,
                          std::vector<TableId>* out) const = 0;
  /// True when postings are served in place from a file mapping.
  virtual bool mapped() const = 0;
  /// Approximate heap bytes owned by this source.
  virtual size_t HeapBytes() const = 0;
};

/// Build-mode source: owns the (doc, tf) lists plus per-doc field
/// lengths — everything the scoring-layout builder consumes.
class HeapPostingsSource final : public PostingsSource {
 public:
  HeapPostingsSource() : postings(kNumFields), field_len(kNumFields) {}

  size_t NumTerms(int field) const override {
    return postings[field].size();
  }
  void AppendDocs(int field, TermId term,
                  std::vector<TableId>* out) const override {
    if (term >= postings[field].size()) return;
    for (const Posting& p : postings[field][term]) out->push_back(p.doc);
  }
  bool mapped() const override { return false; }
  size_t HeapBytes() const override;

  /// postings[field][term] -> postings sorted by doc id (insertion order
  /// is ascending because ids are assigned ascending).
  std::vector<std::vector<std::vector<Posting>>> postings;
  /// Field lengths (in tokens) per doc, for length normalization.
  std::vector<std::vector<uint32_t>> field_len;
};

/// Zero-copy source: per-field `u64 offsets[num_terms + 1]` tables over
/// varint-delta doc-id blobs, pointing into a snapshot mapping whose
/// lifetime the owning Corpus pins. Offsets are validated monotone and
/// in-bounds at load; a garbled varint terminates its list early rather
/// than reading out of bounds.
class MappedPostingsSource final : public PostingsSource {
 public:
  struct FieldView {
    const uint64_t* offsets = nullptr;  // [num_terms + 1]
    const char* blob = nullptr;
  };

  size_t NumTerms(int) const override { return num_terms; }
  void AppendDocs(int field, TermId term,
                  std::vector<TableId>* out) const override;
  bool mapped() const override { return true; }
  size_t HeapBytes() const override { return 0; }

  FieldView fields[kNumFields];
  size_t num_terms = 0;
};

/// The raw-array form of the merged block-max scoring layout both
/// scorers run over: term t's postings live at [offsets[t],
/// offsets[t+1]) of the parallel docs/scores arrays, its blocks at
/// [block_offsets[t], block_offsets[t+1]) of block_last/block_max.
/// Points at heap vectors (build mode / v2-v3 load) or straight into a
/// v4 snapshot mapping — identical scoring either way.
struct ScoringView {
  uint32_t block_size = 0;
  size_t num_terms = 0;
  const uint64_t* offsets = nullptr;       // [num_terms + 1]
  const TableId* docs = nullptr;           // [offsets[num_terms]]
  const double* scores = nullptr;          // [offsets[num_terms]]
  const uint64_t* block_offsets = nullptr;  // [num_terms + 1]
  const TableId* block_last = nullptr;     // max doc id per block
  const double* block_max = nullptr;       // max contribution per block
  const double* term_max = nullptr;        // [num_terms]
};

/// The corpus-wide read surface the mapping layers consult: tokenizer,
/// vocabulary and IDF statistics plus the conjunctive doc-set probes of
/// the PMI^2 feature (§3.2.3). TableIndex implements it over one index;
/// CorpusSet::stats() implements it over a sharded corpus by unioning
/// the per-shard doc sets under the shared global statistics — so the
/// query parser, candidate builder and column mapper are shard-agnostic
/// and score identically whether the corpus is one index or many.
class CorpusStats {
 public:
  virtual ~CorpusStats() = default;

  virtual const Tokenizer& tokenizer() const = 0;
  virtual const Vocabulary& vocab() const = 0;
  /// Corpus-wide IDF statistics (document = one table, all fields). For
  /// a shard of a CorpusSet these are the GLOBAL statistics computed
  /// before partitioning, not per-shard counts.
  virtual const IdfDictionary& idf() const = 0;
  virtual size_t num_docs() const = 0;

  /// Sorted ids of docs whose header+context fields contain ALL of
  /// `keywords` (after tokenization).
  virtual std::vector<TableId> MatchAllInHeaderOrContext(
      const std::vector<std::string>& keywords) const = 0;

  /// Sorted ids of docs whose content field contains ALL of `keywords`.
  virtual std::vector<TableId> MatchAllInContent(
      const std::vector<std::string>& keywords) const = 0;
};

/// Append-only in-memory inverted index. Build once, then query from any
/// number of threads: Search()/MatchAllIn*()/idf()/vocab() are pure
/// reads with no hidden mutable state beyond the lazily built scoring
/// layout, whose one-time construction is guarded by a mutex + released
/// atomic (audited for the batch query runner). Add() must not overlap
/// queries.
///
/// A v4 snapshot load installs mapped sources instead (postings, vocab,
/// IDF, scoring view all read in place from the mapping) — such an
/// index is immutable: Add() CHECK-fails, the scoring layout is already
/// "built".
class TableIndex : public CorpusStats {
 public:
  explicit TableIndex(IndexOptions options = {},
                      TokenizerOptions tokenizer_options = {});

  /// Indexes a table under table.id. Title rows are indexed as header
  /// text (they describe the table, not a specific column, but the paper
  /// treats title as a header-adjacent part).
  void Add(const WebTable& table);

  /// Pre-seeds the vocabulary with a copy of `vocab` (build mode, before
  /// the first Add): tokens already known to the seeding corpus keep
  /// their term ids, new tokens intern after them. Together with
  /// InstallGlobalStats this is how a derived index (a shard of a set, a
  /// freshness delta, a merged set) scores identically to its base —
  /// see docs/SHARDING.md and docs/FRESHNESS.md.
  void SeedVocabulary(const Vocabulary& vocab);

  /// Replaces the accumulated IDF statistics with a copy of `idf` (build
  /// mode, after the Add loop): pins the base corpus' global statistics
  /// so per-term contributions match the base bit-for-bit. Terms beyond
  /// the pinned df table (interned after seeding) score as document
  /// frequency zero. Drops any built scoring layout.
  void InstallGlobalStats(const IdfDictionary& idf);

  /// Disjunctive boosted TF-IDF search; returns up to `k` docs by
  /// descending score (ties broken by ascending id). k < 0 returns all
  /// matching docs (always via the exhaustive path — WAND's pruning
  /// needs a finite heap).
  std::vector<ScoredDoc> Search(const std::vector<std::string>& keywords,
                                int k,
                                ProbeScorer scorer = ProbeScorer::kWand) const;

  /// Sorted ids of docs whose header+context fields contain ALL of
  /// `keywords` (after tokenization).
  std::vector<TableId> MatchAllInHeaderOrContext(
      const std::vector<std::string>& keywords) const override;

  /// Sorted ids of docs whose content field contains ALL of `keywords`.
  std::vector<TableId> MatchAllInContent(
      const std::vector<std::string>& keywords) const override;

  /// Corpus-wide IDF statistics (document = one table, all fields). On a
  /// CorpusSet shard these are the global pre-partition statistics.
  const IdfDictionary& idf() const override { return idf_; }
  const Vocabulary& vocab() const override { return vocab_; }
  const Tokenizer& tokenizer() const override { return tokenizer_; }

  size_t num_docs() const override { return doc_count_; }

  const IndexOptions& options() const { return options_; }

  /// True when this index serves in place from a snapshot mapping.
  bool mapped() const { return postings_->mapped(); }
  /// Approximate heap bytes owned by the index (postings + scoring
  /// layout + vocabulary + IDF). Mapped state counts 0.
  size_t HeapBytes() const;

 private:
  /// Snapshot save/load (src/index/snapshot.cc) serializes the private
  /// postings/field-stats/scoring-layout state directly and installs
  /// the mapped sources on a v4 load.
  friend class SnapshotCodec;

  /// Per-(term, doc) scoring data merged across the three fields, laid
  /// out CSR-style for the probe hot loop (see ScoringView). scores[i]
  /// is the doc's FULL contribution for the term (boost * sqrt(tf) *
  /// idf^2 / sqrt(len+1), summed over the fields in field order) — so a
  /// document's total score is a sum of one value per query term, in
  /// ascending term order, for BOTH scorers.
  struct ScoringLayout {
    uint32_t block_size = 128;
    /// Size vocab+1; offsets into docs/scores.
    std::vector<uint64_t> offsets;
    std::vector<TableId> docs;
    std::vector<double> scores;
    /// Size vocab+1; offsets into block_last/block_max. Term t's block j
    /// covers postings [offsets[t] + j*block_size, min(offsets[t] +
    /// (j+1)*block_size, offsets[t+1])).
    std::vector<uint64_t> block_offsets;
    /// Parallel per-block arrays: max doc id and max contribution.
    std::vector<TableId> block_last;
    std::vector<double> block_max;
    /// Per-term max contribution (max over the term's blocks).
    std::vector<double> term_max;
  };

  /// Tokenizes and interns, returning term ids (unknown terms are
  /// interned too — the vocabulary is owned here).
  std::vector<TermId> TermsOf(const std::string& text);
  /// Lookup-only variant for queries.
  std::vector<TermId> QueryTerms(const std::vector<std::string>& keywords,
                                 bool keep_unknown = false) const;

  /// Sorted doc ids containing term in any of `fields`.
  std::vector<TableId> DocsWithTerm(TermId term,
                                    std::initializer_list<Field> fields) const;

  /// Builds the merged scoring layout on first use (thread-safe; Search
  /// is const and concurrent). Snapshot load installs a prebuilt layout
  /// (v2/v3) or a mapped view (v4) instead; Add() invalidates it.
  void EnsureScoringLayout() const;
  /// Recomputes block boundaries, block maxima and term maxima from
  /// scoring_.docs/scores/offsets + block_size (used by the builder and
  /// by v2/v3 snapshot load, which deserializes only the primary
  /// arrays).
  static void FinishScoringLayout(ScoringLayout* layout);

  /// The raw-array view the scorers run over: the mapped view on a v4
  /// index, otherwise a view of the heap layout. Call only after
  /// EnsureScoringLayout().
  ScoringView ViewOfScoring() const;

  /// Top-k over the merged layout, every posting of every query term.
  std::vector<ScoredDoc> SearchExhaustive(const ScoringView& view,
                                          const std::vector<TermId>& terms,
                                          int k) const;
  /// Block-max WAND top-k over the merged layout.
  std::vector<ScoredDoc> SearchWand(const ScoringView& view,
                                    const std::vector<TermId>& terms,
                                    int k) const;

  IndexOptions options_;
  Tokenizer tokenizer_;
  Vocabulary vocab_;
  IdfDictionary idf_;
  size_t doc_count_ = 0;

  /// The per-field postings read surface; heap_ is non-null iff it is
  /// the build-mode HeapPostingsSource (moving the index preserves the
  /// pointee's address, so the cached raw pointer stays valid).
  std::unique_ptr<PostingsSource> postings_;
  HeapPostingsSource* heap_ = nullptr;

  /// Lazily built from the heap postings/lengths/idf_ (or installed by
  /// v2/v3 snapshot load). scoring_ready_ is set with release order
  /// after the layout is complete; readers check it with acquire order,
  /// so a true read guarantees visibility of the layout without taking
  /// the mutex. A v4 load bypasses it entirely: mapped_scoring_ points
  /// into the mapping and scoring_ready_ is true from installation.
  ///
  /// scoring_ is deliberately NOT WWT_GUARDED_BY(scoring_mu_): the hot
  /// read path is lock-free by design (publication is the
  /// release/acquire pair on scoring_ready_, which clang's lock-based
  /// analysis cannot model). scoring_mu_ serializes only the one-time
  /// *build* in EnsureScoringLayout; every read is gated on
  /// scoring_ready_. Raced under the TSan tier instead.
  mutable ScoringLayout scoring_;
  mutable std::atomic<bool> scoring_ready_{false};
  mutable Mutex scoring_mu_;
  ScoringView mapped_scoring_{};
};

}  // namespace wwt

#endif  // WWT_INDEX_TABLE_INDEX_H_
