// Copyright 2026 The WWT Authors
//
// The node-potential features of §3.2:
//  * SegSim  — the two-part query segmentation similarity (Eq. 1),
//  * Cover   — the matched-query-fraction variant (§3.2.2),
//  * PMI^2   — corpus co-occurrence of keywords and column content
//              (§3.2.3),
//  * R(Q, t) — clipped table relevance (Eq. 2).

#ifndef WWT_CORE_FEATURES_H_
#define WWT_CORE_FEATURES_H_

#include <unordered_map>
#include <vector>

#include "core/candidate.h"
#include "core/query.h"

namespace wwt {

/// Reliability of a match in each table part for outSim, §3.2.1. The
/// defaults are the paper's empirical values for {T, C, Hc, Hr, B}.
struct PartReliability {
  double title = 1.0;          // T: table title rows
  double context = 0.9;        // C: page context
  double other_header_row = 0.5;   // Hc: other header rows of column c
  double other_header_col = 1.0;   // Hr: other columns' headers in row r
  double frequent_body = 0.8;  // B: frequent content tokens
};

struct FeatureOptions {
  PartReliability reliability;
  /// Rows sampled per column for the PMI^2 statistic (it needs one index
  /// probe per distinct cell; §5.1 reports it as the expensive feature).
  int max_pmi_rows = 25;
  /// §5.2 ablation: replace the segmentation model by plain whole-string
  /// similarity against the column's header text (SegSim -> cosine,
  /// Cover -> token coverage), the "unsegmented" comparison of Fig. 8.
  bool unsegmented = false;
};

/// Computes all §3.2 features for one query against one candidate table.
/// PMI^2 probes share a process-wide nothing; per-instance caches keep
/// repeated cells cheap. Not thread-safe.
class FeatureComputer {
 public:
  /// `stats` supplies corpus-wide IDF and the PMI^2 doc-set probes — a
  /// TableIndex, or a CorpusSet's stats view for sharded corpora.
  FeatureComputer(const CorpusStats* stats, FeatureOptions options = {});

  /// Eq. 1. Zero when the table has no header rows (no valid
  /// segmentation pins the query to a column).
  double SegSim(const QueryColumn& ql, const CandidateTable& t,
                int c) const;

  /// §3.2.2: Eq. 1 with inSim replaced by the weighted fraction of the
  /// header part's tokens present in H_rc.
  double Cover(const QueryColumn& ql, const CandidateTable& t,
               int c) const;

  /// §3.2.3. Uses conjunctive index probes H(Q_l) and B(cell).
  double Pmi2(const QueryColumn& ql, const CandidateTable& t, int c);

  /// Eq. 2: (1/q) clip(sum_l max_c Cover(Q_l, tc), min(q, 1.5)).
  double TableRelevance(const Query& query, const CandidateTable& t) const;

 private:
  /// Shared segmentation maximizer; `cover_mode` switches inSim.
  double Segmented(const QueryColumn& ql, const CandidateTable& t, int c,
                   bool cover_mode) const;

  /// outSim(S, t, r, c) over suffix token indices [s_begin, s_end).
  double OutSim(const QueryColumn& ql, size_t s_begin, size_t s_end,
                const CandidateTable& t, int r, int c) const;

  const CorpusStats* index_;
  FeatureOptions options_;

  /// PMI caches: per query-column term-set probes and per cell probes.
  std::unordered_map<std::string, std::vector<TableId>> h_cache_;
  std::unordered_map<std::string, std::vector<TableId>> b_cache_;
};

}  // namespace wwt

#endif  // WWT_CORE_FEATURES_H_
