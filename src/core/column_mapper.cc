#include "core/column_mapper.h"

#include <algorithm>
#include <cmath>

#include "flow/bipartite_matcher.h"
#include "gm/alpha_expansion.h"
#include "gm/belief_propagation.h"
#include "gm/mrf.h"
#include "gm/trws.h"
#include "util/logging.h"

namespace wwt {

namespace {

/// Large additive constant forcing label 1 into every relevant labeling
/// (the M_l of §4.1).
constexpr double kMustMatchBonus = 1e4;

bool AllNr(const std::vector<int>& labels, int q) {
  for (int l : labels) {
    if (l != NrLabel(q)) return false;
  }
  return true;
}

/// Checks the four table constraints (Eqs. 5-8) on an internal labeling.
bool SatisfiesConstraints(const std::vector<int>& labels, int q,
                          int min_match) {
  const int nt = static_cast<int>(labels.size());
  if (nt == 0) return true;
  if (AllNr(labels, q)) return true;
  int matched = 0;
  bool has_first = false;
  std::vector<int> count(q, 0);
  for (int l : labels) {
    if (l == NrLabel(q)) return false;  // all-Irr violated
    if (l < q) {
      if (++count[l] > 1) return false;  // mutex violated
      ++matched;
      if (l == 0) has_first = true;
    }
  }
  if (!has_first) return false;                      // must-match
  if (matched < std::min(min_match, nt)) return false;  // min-match
  return true;
}

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

const char* InferenceModeToString(InferenceMode mode) {
  switch (mode) {
    case InferenceMode::kIndependent:
      return "independent";
    case InferenceMode::kTableCentric:
      return "table-centric";
    case InferenceMode::kAlphaExpansion:
      return "alpha-expansion";
    case InferenceMode::kBeliefPropagation:
      return "bp";
    case InferenceMode::kTrws:
      return "trws";
  }
  return "?";
}

ColumnMapper::ColumnMapper(const CorpusStats* stats, MapperOptions options)
    : index_(stats), options_(std::move(options)) {}

ColumnMapper::TableInference ColumnMapper::SolveTableIndependent(
    const std::vector<std::vector<double>>& theta, int q,
    int min_match) const {
  TableInference result;
  const int nt = static_cast<int>(theta.size());
  if (nt == 0) return result;
  const int m = std::min(min_match, nt);

  BipartiteSpec spec;
  spec.left_cap.assign(nt, 1);
  spec.right_cap.assign(q, 1);
  spec.right_cap.push_back(std::max(0, nt - m));  // na
  spec.weight.assign(nt, std::vector<double>(q + 1, 0.0));
  for (int c = 0; c < nt; ++c) {
    for (int l = 0; l < q; ++l) {
      spec.weight[c][l] = theta[c][l] + (l == 0 ? kMustMatchBonus : 0.0);
    }
    spec.weight[c][q] = theta[c][NaLabel(q)];
  }
  CapacitatedMatcher matcher(std::move(spec));
  const BipartiteResult& match = matcher.Solve();

  std::vector<int> labels(nt, NaLabel(q));
  double rel_score = 0;
  for (int c = 0; c < nt; ++c) {
    int r = match.left_match[c];
    labels[c] = (r >= 0 && r < q) ? r : NaLabel(q);
    rel_score += theta[c][labels[c]];
  }
  double nr_score = 0;
  for (int c = 0; c < nt; ++c) nr_score += theta[c][NrLabel(q)];

  if (rel_score >= nr_score &&
      SatisfiesConstraints(labels, q, min_match)) {
    result.labels = std::move(labels);
    result.relevant = true;
    result.score = rel_score;
  } else {
    result.labels.assign(nt, NrLabel(q));
    result.relevant = false;
    result.score = nr_score;
  }
  return result;
}

std::vector<std::vector<double>> ColumnMapper::MaxMarginalProbs(
    const std::vector<std::vector<double>>& theta, int q) const {
  const int nt = static_cast<int>(theta.size());
  std::vector<std::vector<double>> probs(
      nt, std::vector<double>(NumLabels(q), 0.0));
  if (nt == 0) return probs;

  // Fig. 3 graph: no must-match bonus, na capacity nt (min-match and
  // must-match excluded so relative magnitudes stay undistorted).
  BipartiteSpec spec;
  spec.left_cap.assign(nt, 1);
  spec.right_cap.assign(q, 1);
  spec.right_cap.push_back(nt);  // na
  spec.weight.assign(nt, std::vector<double>(q + 1, 0.0));
  for (int c = 0; c < nt; ++c) {
    for (int l = 0; l < q; ++l) spec.weight[c][l] = theta[c][l];
    spec.weight[c][q] = theta[c][NaLabel(q)];
  }
  CapacitatedMatcher matcher(std::move(spec));
  matcher.Solve();
  std::vector<std::vector<double>> mu = matcher.MaxMarginals();

  double mu_nr = 0;
  for (int c = 0; c < nt; ++c) mu_nr += theta[c][NrLabel(q)];

  const double inv_t = 1.0 / std::max(options_.prob_temperature, 1e-6);
  for (int c = 0; c < nt; ++c) {
    std::vector<double> vals(NumLabels(q));
    for (int l = 0; l <= q; ++l) vals[l] = mu[c][l];
    vals[NrLabel(q)] = mu_nr;
    const double hi = *std::max_element(vals.begin(), vals.end());
    double z = 0;
    for (int l = 0; l < NumLabels(q); ++l) {
      vals[l] = std::isfinite(vals[l])
                    ? std::exp((vals[l] - hi) * inv_t)
                    : 0.0;
      z += vals[l];
    }
    for (int l = 0; l < NumLabels(q); ++l) probs[c][l] = vals[l] / z;
  }
  return probs;
}

MapResult ColumnMapper::Map(const Query& query,
                            const std::vector<CandidateTable>& tables) {
  const int q = query.q();
  const int n = static_cast<int>(tables.size());
  const int min_match = query.min_match();
  FeatureComputer features(index_, options_.features);

  // ----- Node potentials, table-local probabilities, base inference.
  std::vector<std::vector<std::vector<double>>> theta(n);
  std::vector<std::vector<std::vector<double>>> probs(n);
  std::vector<TableInference> base(n);
  for (int t = 0; t < n; ++t) {
    theta[t] = ComputeNodePotentials(query, tables[t], &features,
                                     options_.weights, options_.use_pmi2);
    probs[t] = MaxMarginalProbs(theta[t], q);
    base[t] = SolveTableIndependent(theta[t], q, min_match);
  }

  auto confident = [&](int t, int c) {
    double best = 0;
    for (int l = 0; l < q; ++l) best = std::max(best, probs[t][c][l]);
    return best > options_.confidence_threshold;
  };

  // ----- Cross-table edges (only needed for collective modes).
  std::vector<CrossEdge> edges;
  if (options_.mode != InferenceMode::kIndependent) {
    edges = BuildCrossEdges(tables, options_.edges);
  }
  const double we = options_.weights.we;

  // ----- Inference.
  std::vector<std::vector<int>> labels(n);
  switch (options_.mode) {
    case InferenceMode::kIndependent: {
      for (int t = 0; t < n; ++t) labels[t] = base[t].labels;
      break;
    }
    case InferenceMode::kTableCentric: {
      // Stage 2: neighbor messages; stage 3: per-table re-inference with
      // potentials max(msg, theta).
      std::vector<std::vector<std::vector<double>>> msg(n);
      for (int t = 0; t < n; ++t) {
        msg[t].assign(tables[t].num_cols, std::vector<double>(q, 0.0));
      }
      for (const CrossEdge& e : edges) {
        for (int l = 0; l < q; ++l) {
          if (confident(e.t2, e.c2)) {
            msg[e.t1][e.c1][l] += we * e.nsim_12 * probs[e.t2][e.c2][l];
          }
          if (confident(e.t1, e.c1)) {
            msg[e.t2][e.c2][l] += we * e.nsim_21 * probs[e.t1][e.c1][l];
          }
        }
      }
      for (int t = 0; t < n; ++t) {
        std::vector<std::vector<double>> boosted = theta[t];
        for (int c = 0; c < tables[t].num_cols; ++c) {
          for (int l = 0; l < q; ++l) {
            boosted[c][l] = std::max(boosted[c][l], msg[t][c][l]);
          }
        }
        labels[t] = SolveTableIndependent(boosted, q, min_match).labels;
      }
      break;
    }
    case InferenceMode::kAlphaExpansion:
    case InferenceMode::kBeliefPropagation:
    case InferenceMode::kTrws: {
      // Flatten columns into MRF nodes.
      const int L = NumLabels(q);
      std::vector<int> first_node(n + 1, 0);
      for (int t = 0; t < n; ++t) {
        first_node[t + 1] = first_node[t] + tables[t].num_cols;
      }
      Mrf mrf;
      mrf.num_labels = L;
      for (int t = 0; t < n; ++t) {
        for (int c = 0; c < tables[t].num_cols; ++c) {
          std::vector<double> energy(L);
          for (int l = 0; l < L; ++l) energy[l] = -theta[t][c][l];
          mrf.AddNode(std::move(energy));
        }
      }
      const bool message_passing =
          options_.mode != InferenceMode::kAlphaExpansion;
      // Within-table constraints as pairwise energies.
      for (int t = 0; t < n; ++t) {
        const int nt = tables[t].num_cols;
        for (int ci = 0; ci < nt; ++ci) {
          for (int cj = ci + 1; cj < nt; ++cj) {
            std::vector<double> energy(L * L, 0.0);
            for (int li = 0; li < L; ++li) {
              for (int lj = 0; lj < L; ++lj) {
                // all-Irr (Eq. 11): exactly one nr is inconsistent.
                int nr_count = (li == NrLabel(q)) + (lj == NrLabel(q));
                if (nr_count == 1) energy[li * L + lj] += kHardPenalty;
                // mutex as a pairwise energy (BP / TRWS only; §5.3).
                if (message_passing && li == lj && li < q) {
                  energy[li * L + lj] += kHardPenalty;
                }
              }
            }
            mrf.AddEdge(first_node[t] + ci, first_node[t] + cj,
                        std::move(energy));
          }
        }
      }
      // Cross-table attractive potentials (Eq. 4).
      for (const CrossEdge& e : edges) {
        double s = we * (e.nsim_12 * (confident(e.t2, e.c2) ? 1 : 0) +
                         e.nsim_21 * (confident(e.t1, e.c1) ? 1 : 0));
        if (s <= 0) continue;
        std::vector<double> energy(L * L, 0.0);
        for (int l = 0; l < L; ++l) {
          if (l == NrLabel(q)) continue;
          energy[l * L + l] = -s;
        }
        mrf.AddEdge(first_node[e.t1] + e.c1, first_node[e.t2] + e.c2,
                    std::move(energy));
      }

      std::vector<int> flat;
      if (options_.mode == InferenceMode::kAlphaExpansion) {
        AlphaExpansionOptions opts;
        opts.init_label = NaLabel(q);
        for (int t = 0; t < n; ++t) {
          std::vector<int> group;
          for (int c = 0; c < tables[t].num_cols; ++c) {
            group.push_back(first_node[t] + c);
          }
          if (group.size() > 1) opts.mutex_groups.push_back(group);
        }
        for (int l = 0; l < q; ++l) opts.constrained_labels.push_back(l);
        flat = AlphaExpansion(mrf, opts);
      } else if (options_.mode == InferenceMode::kBeliefPropagation) {
        flat = MinSumBeliefPropagation(mrf);
      } else {
        flat = Trws(mrf);
      }

      // Unflatten + repair constraint violations per table (§4.3: greedy
      // fix via the table-independent algorithm).
      for (int t = 0; t < n; ++t) {
        labels[t].assign(flat.begin() + first_node[t],
                         flat.begin() + first_node[t + 1]);
        if (!SatisfiesConstraints(labels[t], q, min_match)) {
          labels[t] = SolveTableIndependent(theta[t], q, min_match).labels;
        }
      }
      break;
    }
  }

  // ----- Assemble result + objective (Eq. 9).
  MapResult result;
  double objective = 0;
  for (int t = 0; t < n; ++t) {
    TableMapping mapping;
    mapping.id = tables[t].table.id;
    mapping.relevant = !AllNr(labels[t], q) && tables[t].num_cols > 0;
    mapping.col_probs = probs[t];
    for (int c = 0; c < tables[t].num_cols; ++c) {
      mapping.labels.push_back(ToExternalLabel(labels[t][c], q));
      objective += theta[t][c][labels[t][c]];
    }
    double nr_score = 0;
    for (int c = 0; c < tables[t].num_cols; ++c) {
      nr_score += theta[t][c][NrLabel(q)];
    }
    mapping.relevance_prob =
        Sigmoid((base[t].score - nr_score +
                 (base[t].relevant ? 0.0 : -1.0)) /
                std::max(options_.prob_temperature, 1e-6));
    if (!SatisfiesConstraints(labels[t], q, min_match)) {
      objective -= kHardPenalty;
    }
    result.tables.push_back(std::move(mapping));
  }
  for (const CrossEdge& e : edges) {
    int l1 = labels[e.t1][e.c1];
    int l2 = labels[e.t2][e.c2];
    if (l1 == l2 && l1 != NrLabel(q)) {
      double s = we * (e.nsim_12 * (confident(e.t2, e.c2) ? 1 : 0) +
                       e.nsim_21 * (confident(e.t1, e.c1) ? 1 : 0));
      objective += s;
    }
  }
  result.objective = objective;
  return result;
}

}  // namespace wwt
