// Copyright 2026 The WWT Authors
//
// The column mapper (§3-§4): given a query and candidate web tables,
// decide per table whether it is relevant and map its columns to query
// columns, maximizing objective Eq. 9 (node potentials + cross-table edge
// potentials + table-level hard constraints).
//
// Five inference algorithms are provided (Table 2):
//  * kIndependent      — per-table optimum via bipartite matching (§4.1),
//                        no collective inference ("None" in Table 2).
//  * kTableCentric     — the paper's winning algorithm (§4.2):
//                        max-marginal probabilities -> neighbor messages
//                        -> per-table re-inference.
//  * kAlphaExpansion   — constrained α-expansion (§4.3, Figs. 4).
//  * kBeliefPropagation, kTrws — edge-centric message passing with the
//                        constraints reduced to pairwise potentials
//                        (Eq. 11) and must/min-match post-processing.

#ifndef WWT_CORE_COLUMN_MAPPER_H_
#define WWT_CORE_COLUMN_MAPPER_H_

#include <vector>

#include "core/candidate.h"
#include "core/edges.h"
#include "core/potentials.h"
#include "core/query.h"

namespace wwt {

enum class InferenceMode {
  kIndependent,
  kTableCentric,
  kAlphaExpansion,
  kBeliefPropagation,
  kTrws,
};

const char* InferenceModeToString(InferenceMode mode);

struct MapperOptions {
  MapperWeights weights;
  InferenceMode mode = InferenceMode::kTableCentric;
  /// Compute the PMI^2 feature (expensive; default off as in WWT §5.1).
  bool use_pmi2 = false;
  FeatureOptions features;
  EdgeOptions edges;
  /// Column-confidence gate of Eq. 4.
  double confidence_threshold = 0.6;
  /// Softmax temperature calibrating Pr(l|tc) from max-marginals (§4.2
  /// step 1). Score gaps are O(1), so a fraction-of-a-unit temperature is
  /// what makes "0.6-confident" meaningful.
  double prob_temperature = 0.25;
};

/// Final decision for one candidate table.
struct TableMapping {
  TableId id = 0;
  bool relevant = false;
  /// Per column, external encoding: 0..q-1 / kLabelNa / kLabelNr.
  std::vector<int> labels;
  /// Calibrated per-column label distribution (internal label order:
  /// 0..q-1, na, nr), from table-local max-marginals (§4.2 step 1).
  std::vector<std::vector<double>> col_probs;
  /// Calibrated table relevance probability (drives the second index
  /// probe's top-2 selection and row ranking).
  double relevance_prob = 0;
};

struct MapResult {
  std::vector<TableMapping> tables;
  /// Value of objective Eq. 9 for the returned labeling (hard-constraint
  /// violations contribute -kHardPenalty each); used by the §5.3
  /// score-vs-error analysis.
  double objective = 0;
};

/// Column mapping solver. Holds per-instance PMI caches; create one per
/// thread.
class ColumnMapper {
 public:
  /// `stats` supplies the corpus-wide statistics the features consult —
  /// a TableIndex, or a CorpusSet's stats view for sharded corpora.
  ColumnMapper(const CorpusStats* stats, MapperOptions options = {});

  /// Labels every column of every candidate table.
  MapResult Map(const Query& query,
                const std::vector<CandidateTable>& tables);

  const MapperOptions& options() const { return options_; }
  MapperOptions* mutable_options() { return &options_; }

 private:
  struct TableInference {
    std::vector<int> labels;  // internal encoding
    bool relevant = false;
    double score = 0;  // node-potential part of Eq. 9 for this table
  };

  /// §4.1 optimum for one table given node potentials.
  TableInference SolveTableIndependent(
      const std::vector<std::vector<double>>& theta, int q,
      int min_match) const;

  /// §4.2 step 1: per-column softmax of max-marginals.
  std::vector<std::vector<double>> MaxMarginalProbs(
      const std::vector<std::vector<double>>& theta, int q) const;

  const CorpusStats* index_;
  MapperOptions options_;
};

}  // namespace wwt

#endif  // WWT_CORE_COLUMN_MAPPER_H_
