#include "core/query.h"

namespace wwt {

Query Query::Parse(const std::vector<std::string>& col_keywords,
                   const CorpusStats& stats) {
  Query query;
  for (const std::string& raw : col_keywords) {
    QueryColumn col;
    col.raw = raw;
    for (const std::string& tok : stats.tokenizer().Tokenize(raw)) {
      if (Tokenizer::IsStopword(tok)) continue;
      auto id = stats.vocab().Find(tok);
      if (!id) continue;  // unseen in corpus: cannot match anything
      col.terms.push_back(*id);
      double w = stats.idf().Idf(*id);
      col.term_weight.push_back(w);
      col.vec.Add(*id, w);
    }
    col.vec.Compact();
    col.norm_squared = col.vec.NormSquared();
    query.cols.push_back(std::move(col));
    query.all_keywords.push_back(raw);
  }
  return query;
}

}  // namespace wwt
