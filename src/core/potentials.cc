#include "core/potentials.h"

#include <algorithm>

#include "table/labels.h"

namespace wwt {

int ToExternalLabel(int internal, int q) {
  if (internal < q) return internal;
  if (internal == NaLabel(q)) return kLabelNa;
  return kLabelNr;
}

std::vector<std::vector<double>> ComputeNodePotentials(
    const Query& query, const CandidateTable& t, FeatureComputer* features,
    const MapperWeights& weights, bool use_pmi2) {
  const int q = query.q();
  const int nt = t.num_cols;
  std::vector<std::vector<double>> theta(
      nt, std::vector<double>(NumLabels(q), 0.0));

  const double r = features->TableRelevance(query, t);
  const double nr_potential =
      weights.w4 * (std::min<double>(q, nt) / std::max(nt, 1)) * (1.0 - r);

  for (int c = 0; c < nt; ++c) {
    for (int l = 0; l < q; ++l) {
      double score = weights.w1 * features->SegSim(query.cols[l], t, c) +
                     weights.w2 * features->Cover(query.cols[l], t, c);
      if (use_pmi2 && weights.w3 != 0) {
        score += weights.w3 * features->Pmi2(query.cols[l], t, c);
      }
      theta[c][l] = score + weights.w5;
    }
    theta[c][NaLabel(q)] = 0.0;
    theta[c][NrLabel(q)] = nr_potential;
  }
  return theta;
}

}  // namespace wwt
