// Copyright 2026 The WWT Authors
//
// Cross-table edge construction, §3.3: content-overlap similarity between
// columns of different tables, restricted to the best one-to-one matching
// per table pair (max-matching edges), with the asymmetric normalization
// nsim(tc, t'c') = sim / (lambda + sum of tc's neighbor similarities).

#ifndef WWT_CORE_EDGES_H_
#define WWT_CORE_EDGES_H_

#include <vector>

#include "core/candidate.h"

namespace wwt {

struct EdgeOptions {
  /// Smoothing constant lambda in the nsim normalization (§3.3).
  double nsim_lambda = 0.3;
  /// Neighbors with unnormalized similarity below this are ignored.
  double sim_floor = 0.1;
  /// Column matching weight = content_weight * content cosine +
  /// (1 - content_weight) * header cosine (§3.3 "weighted sum of their
  /// content and header similarity").
  double content_weight = 0.8;
  /// Ablations of the §3.3 design choices (bench_ablation_edges):
  /// false -> connect every similar column pair instead of only the
  /// one-to-one max matching per table pair.
  bool max_matching_only = true;
  /// false -> use raw similarity as nsim (skip the lambda-smoothed
  /// neighbor normalization).
  bool normalize = true;
};

/// One max-matching edge between columns of two different tables.
struct CrossEdge {
  int t1 = 0, c1 = 0;
  int t2 = 0, c2 = 0;
  double sim = 0;      // unnormalized content similarity
  double nsim_12 = 0;  // nsim(t1c1, t2c2)
  double nsim_21 = 0;  // nsim(t2c2, t1c1)
};

/// Builds the edge set over all table pairs. O(n^2) pairs with one small
/// bipartite matching each.
std::vector<CrossEdge> BuildCrossEdges(
    const std::vector<CandidateTable>& tables,
    const EdgeOptions& options = {});

}  // namespace wwt

#endif  // WWT_CORE_EDGES_H_
