// Copyright 2026 The WWT Authors
//
// The three comparison methods of §5:
//  * Basic   — thresholded whole-string TF-IDF relevance + per-column
//              header cosine matching (§3's strawman).
//  * NbrText — Basic with neighbor-column text imported:
//              sim'(Q_l, tc) = max(sim, max_{t'c'} sim(tc,t'c') *
//              sim(Q_l, t'c')).
//  * PMI2    — Basic augmented with the PMI^2 corpus statistic.

#ifndef WWT_CORE_BASELINES_H_
#define WWT_CORE_BASELINES_H_

#include "core/column_mapper.h"

namespace wwt {

enum class BaselineKind { kBasic, kNbrText, kPmi2 };

const char* BaselineKindToString(BaselineKind kind);

struct BaselineOptions {
  BaselineKind kind = BaselineKind::kBasic;
  /// Table-relevance threshold tau1 on cosine(Q, header+context).
  double table_threshold = 0.30;
  /// Column-match threshold tau2 on cosine(Q_l, header(c)).
  double column_threshold = 0.10;
  /// Weight of the PMI^2 term (kPmi2 only).
  double pmi_weight = 2.0;
  EdgeOptions edges;      // used by kNbrText
  FeatureOptions features;  // used by kPmi2
};

/// Per-kind thresholds from the grid-search trainer (bench_train).
BaselineOptions DefaultBaselineOptions(BaselineKind kind);

/// Baseline column mapper; emits the same MapResult as ColumnMapper so
/// the evaluation harness treats all methods uniformly.
class BaselineMapper {
 public:
  BaselineMapper(const TableIndex* index, BaselineOptions options = {});

  MapResult Map(const Query& query,
                const std::vector<CandidateTable>& tables);

  const BaselineOptions& options() const { return options_; }
  BaselineOptions* mutable_options() { return &options_; }

 private:
  const TableIndex* index_;
  BaselineOptions options_;
};

}  // namespace wwt

#endif  // WWT_CORE_BASELINES_H_
