// Copyright 2026 The WWT Authors
//
// Query model: q sets of column keywords, tokenized against the corpus
// vocabulary and weighted by corpus IDF (the TI(w) weights of Eq. 1).

#ifndef WWT_CORE_QUERY_H_
#define WWT_CORE_QUERY_H_

#include <string>
#include <vector>

#include "index/table_index.h"
#include "text/tfidf.h"

namespace wwt {

/// One query column Q_l.
struct QueryColumn {
  std::string raw;                 // "name of explorers"
  std::vector<TermId> terms;       // in order, stopwords dropped
  std::vector<double> term_weight;  // TI(w) per term
  SparseVector vec;                // TF-IDF vector
  double norm_squared = 0;         // ||Q_l||^2
};

/// A parsed multi-column query.
struct Query {
  std::vector<QueryColumn> cols;
  /// Union of all column keywords (the §2.2.1 first index probe).
  std::vector<std::string> all_keywords;

  int q() const { return static_cast<int>(cols.size()); }

  /// min-match threshold m: 2 for q >= 2, else 1 (§3.4).
  int min_match() const { return q() >= 2 ? 2 : 1; }

  /// Tokenizes each keyword set against the corpus vocabulary (a
  /// TableIndex, or a CorpusSet's global stats view). Tokens absent from
  /// the corpus cannot match anything and are dropped.
  static Query Parse(const std::vector<std::string>& col_keywords,
                     const CorpusStats& stats);
};

}  // namespace wwt

#endif  // WWT_CORE_QUERY_H_
