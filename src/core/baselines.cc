#include "core/baselines.h"

#include <algorithm>
#include <cmath>

#include "flow/bipartite_matcher.h"
#include "table/labels.h"

namespace wwt {

BaselineOptions DefaultBaselineOptions(BaselineKind kind) {
  BaselineOptions options;
  options.kind = kind;
  switch (kind) {
    case BaselineKind::kBasic:
      options.table_threshold = 0.30;
      options.column_threshold = 0.10;
      break;
    case BaselineKind::kNbrText:
      options.table_threshold = 0.30;
      options.column_threshold = 0.20;
      break;
    case BaselineKind::kPmi2:
      options.table_threshold = 0.40;
      options.column_threshold = 0.10;
      options.pmi_weight = 1.0;
      break;
  }
  return options;
}

const char* BaselineKindToString(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::kBasic:
      return "Basic";
    case BaselineKind::kNbrText:
      return "NbrText";
    case BaselineKind::kPmi2:
      return "PMI2";
  }
  return "?";
}

BaselineMapper::BaselineMapper(const TableIndex* index,
                               BaselineOptions options)
    : index_(index), options_(std::move(options)) {}

MapResult BaselineMapper::Map(const Query& query,
                              const std::vector<CandidateTable>& tables) {
  const int q = query.q();
  const int n = static_cast<int>(tables.size());

  // Whole-query vector for table relevance.
  SparseVector query_vec;
  for (const QueryColumn& col : query.cols) {
    for (size_t i = 0; i < col.terms.size(); ++i) {
      query_vec.Add(col.terms[i], col.term_weight[i]);
    }
  }
  query_vec.Compact();

  FeatureComputer features(index_, options_.features);

  // NbrText needs the cross-table column similarities.
  std::vector<CrossEdge> edges;
  if (options_.kind == BaselineKind::kNbrText) {
    edges = BuildCrossEdges(tables, options_.edges);
  }

  // Per-column base similarity sim(Q_l, tc) = cosine with header text.
  std::vector<std::vector<std::vector<double>>> sim(n);
  for (int t = 0; t < n; ++t) {
    sim[t].assign(tables[t].num_cols, std::vector<double>(q, 0.0));
    for (int c = 0; c < tables[t].num_cols; ++c) {
      for (int l = 0; l < q; ++l) {
        sim[t][c][l] = SparseVector::Cosine(
            query.cols[l].vec, tables[t].cols[c].header_vec);
      }
    }
  }
  if (options_.kind == BaselineKind::kNbrText) {
    // Import the similarity of overlapping neighbor columns, scaled by
    // the content overlap (§5's NbrText definition).
    auto boosted = sim;
    for (const CrossEdge& e : edges) {
      for (int l = 0; l < q; ++l) {
        boosted[e.t1][e.c1][l] = std::max(
            boosted[e.t1][e.c1][l], e.sim * sim[e.t2][e.c2][l]);
        boosted[e.t2][e.c2][l] = std::max(
            boosted[e.t2][e.c2][l], e.sim * sim[e.t1][e.c1][l]);
      }
    }
    sim = std::move(boosted);
  }

  MapResult result;
  for (int t = 0; t < n; ++t) {
    const CandidateTable& table = tables[t];
    const int nt = table.num_cols;

    // Table relevance: cosine of all query keywords against the table's
    // header + context text.
    SparseVector table_vec;
    for (TermId w : table.title_terms) {
      table_vec.Add(w, index_->idf().Idf(w));
    }
    for (TermId w : table.context_terms) {
      table_vec.Add(w, index_->idf().Idf(w));
    }
    for (int c = 0; c < nt; ++c) {
      for (const auto& [w, weight] : table.cols[c].header_vec.entries()) {
        table_vec.Add(w, weight);
      }
    }
    table_vec.Compact();
    double rel_score = SparseVector::Cosine(query_vec, table_vec);

    // PMI2 augmentation.
    std::vector<std::vector<double>> pmi;
    if (options_.kind == BaselineKind::kPmi2) {
      pmi.assign(nt, std::vector<double>(q, 0.0));
      double best_sum = 0;
      for (int l = 0; l < q; ++l) {
        double best = 0;
        for (int c = 0; c < nt; ++c) {
          pmi[c][l] = features.Pmi2(query.cols[l], table, c);
          best = std::max(best, pmi[c][l]);
        }
        best_sum += best;
      }
      rel_score += options_.pmi_weight * best_sum / std::max(q, 1);
    }

    TableMapping mapping;
    mapping.id = table.table.id;
    mapping.relevance_prob =
        1.0 / (1.0 + std::exp(-20.0 * (rel_score -
                                       options_.table_threshold)));
    mapping.labels.assign(nt, kLabelNr);
    mapping.col_probs.assign(nt,
                             std::vector<double>(NumLabels(q), 0.0));

    if (rel_score >= options_.table_threshold && nt > 0) {
      // Thresholded best matching of query columns to table columns
      // (mutex respected via unit label capacities).
      BipartiteSpec spec;
      spec.left_cap.assign(nt, 1);
      spec.right_cap.assign(q, 1);
      spec.right_cap.push_back(nt);  // na
      spec.weight.assign(nt, std::vector<double>(q + 1, 0.0));
      for (int c = 0; c < nt; ++c) {
        for (int l = 0; l < q; ++l) {
          double s = sim[t][c][l];
          if (options_.kind == BaselineKind::kPmi2) {
            s += options_.pmi_weight * pmi[c][l];
          }
          spec.weight[c][l] = s - options_.column_threshold;
        }
      }
      CapacitatedMatcher matcher(std::move(spec));
      const BipartiteResult& match = matcher.Solve();

      int assigned = 0;
      std::vector<int> labels(nt, kLabelNa);
      for (int c = 0; c < nt; ++c) {
        int r = match.left_match[c];
        if (r >= 0 && r < q) {
          // Only keep above-threshold assignments.
          double s = sim[t][c][r];
          if (options_.kind == BaselineKind::kPmi2) {
            s += options_.pmi_weight * pmi[c][r];
          }
          if (s > options_.column_threshold) {
            labels[c] = r;
            ++assigned;
          }
        }
      }
      if (assigned > 0) {
        mapping.relevant = true;
        mapping.labels = std::move(labels);
      }
    }
    result.tables.push_back(std::move(mapping));
  }
  return result;
}

}  // namespace wwt
