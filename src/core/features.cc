#include "core/features.h"

#include <algorithm>
#include <cmath>

namespace wwt {

FeatureComputer::FeatureComputer(const CorpusStats* stats,
                                 FeatureOptions options)
    : index_(stats), options_(options) {}

double FeatureComputer::OutSim(const QueryColumn& ql, size_t s_begin,
                               size_t s_end, const CandidateTable& t,
                               int r, int c) const {
  if (s_begin >= s_end) return 0;
  double norm_s = 0;
  for (size_t i = s_begin; i < s_end; ++i) {
    norm_s += ql.term_weight[i] * ql.term_weight[i];
  }
  if (norm_s <= 0) return 0;

  const PartReliability& p = options_.reliability;
  const CandidateColumn& col = t.cols[c];
  double out = 0;
  for (size_t i = s_begin; i < s_end; ++i) {
    const TermId w = ql.terms[i];
    double miss = 1.0;  // product of (1 - p_i) over parts containing w
    if (t.title_terms.count(w)) miss *= 1.0 - p.title;
    if (t.context_terms.count(w)) miss *= 1.0 - p.context;
    // Hc: other header rows of this column.
    for (int r2 = 0; r2 < t.num_header_rows; ++r2) {
      if (r2 == r) continue;
      const auto& terms = col.header_terms[r2];
      if (std::find(terms.begin(), terms.end(), w) != terms.end()) {
        miss *= 1.0 - p.other_header_row;
        break;
      }
    }
    // Hr: headers of other columns in row r.
    for (int c2 = 0; c2 < t.num_cols; ++c2) {
      if (c2 == c) continue;
      const auto& terms = t.cols[c2].header_terms[r];
      if (std::find(terms.begin(), terms.end(), w) != terms.end()) {
        miss *= 1.0 - p.other_header_col;
        break;
      }
    }
    if (t.frequent_terms_all.count(w)) miss *= 1.0 - p.frequent_body;

    const double ti2 = ql.term_weight[i] * ql.term_weight[i];
    out += ti2 / norm_s * (1.0 - miss);
  }
  return out;
}

double FeatureComputer::Segmented(const QueryColumn& ql,
                                  const CandidateTable& t, int c,
                                  bool cover_mode) const {
  const size_t m = ql.terms.size();
  if (m == 0 || ql.norm_squared <= 0) return 0;
  if (t.num_header_rows == 0) return 0;
  const CandidateColumn& col = t.cols[c];

  double best = 0;
  for (int r = 0; r < t.num_header_rows; ++r) {
    const std::vector<TermId>& hrc = col.header_terms[r];
    if (hrc.empty()) continue;
    SparseVector hvec;
    for (TermId w : hrc) hvec.Add(w, index_->idf().Idf(w));
    hvec.Compact();

    // inSim of a query-token index range [b, e) against H_rc.
    auto in_sim = [&](size_t b, size_t e, double* norm_sq,
                      bool* intersects) {
      SparseVector pvec;
      double ns = 0;
      bool hit = false;
      for (size_t i = b; i < e; ++i) {
        pvec.Add(ql.terms[i], ql.term_weight[i]);
        ns += ql.term_weight[i] * ql.term_weight[i];
        if (std::find(hrc.begin(), hrc.end(), ql.terms[i]) != hrc.end()) {
          hit = true;
        }
      }
      pvec.Compact();
      *norm_sq = ns;
      *intersects = hit;
      if (!hit || ns <= 0) return 0.0;
      if (cover_mode) {
        // Weighted fraction of the part's tokens present in H_rc.
        double covered = 0;
        for (size_t i = b; i < e; ++i) {
          if (std::find(hrc.begin(), hrc.end(), ql.terms[i]) !=
              hrc.end()) {
            covered += ql.term_weight[i] * ql.term_weight[i];
          }
        }
        return covered / ns;
      }
      return SparseVector::Cosine(pvec, hvec);
    };

    // Both segment orders (PS = Q_l or SP = Q_l, Eq. 1): the header part
    // may be the prefix or the suffix.
    for (size_t k = 0; k <= m; ++k) {
      // Orientation A: [0, k) pinned to the header, [k, m) outside.
      {
        double norm_p = 0;
        bool hit = false;
        double in = in_sim(0, k, &norm_p, &hit);
        if (hit) {
          double out = OutSim(ql, k, m, t, r, c);
          double norm_s = ql.norm_squared - norm_p;
          double score = norm_p / ql.norm_squared * in +
                         norm_s / ql.norm_squared * out;
          best = std::max(best, score);
        }
      }
      // Orientation B: [k, m) pinned to the header, [0, k) outside.
      {
        double norm_p = 0;
        bool hit = false;
        double in = in_sim(k, m, &norm_p, &hit);
        if (hit) {
          double out = OutSim(ql, 0, k, t, r, c);
          double norm_s = ql.norm_squared - norm_p;
          double score = norm_p / ql.norm_squared * in +
                         norm_s / ql.norm_squared * out;
          best = std::max(best, score);
        }
      }
    }
  }
  return best;
}

double FeatureComputer::SegSim(const QueryColumn& ql,
                               const CandidateTable& t, int c) const {
  if (options_.unsegmented) {
    return SparseVector::Cosine(ql.vec, t.cols[c].header_vec);
  }
  return Segmented(ql, t, c, /*cover_mode=*/false);
}

double FeatureComputer::Cover(const QueryColumn& ql,
                              const CandidateTable& t, int c) const {
  if (options_.unsegmented) {
    // Weighted fraction of query tokens present in the header text.
    if (ql.norm_squared <= 0) return 0;
    double covered = 0;
    for (size_t i = 0; i < ql.terms.size(); ++i) {
      if (t.cols[c].header_vec.Get(ql.terms[i]) > 0) {
        covered += ql.term_weight[i] * ql.term_weight[i];
      }
    }
    return covered / ql.norm_squared;
  }
  return Segmented(ql, t, c, /*cover_mode=*/true);
}

double FeatureComputer::Pmi2(const QueryColumn& ql, const CandidateTable& t,
                             int c) {
  if (ql.terms.empty()) return 0;

  auto h_it = h_cache_.find(ql.raw);
  if (h_it == h_cache_.end()) {
    h_it = h_cache_
               .emplace(ql.raw,
                        index_->MatchAllInHeaderOrContext({ql.raw}))
               .first;
  }
  const std::vector<TableId>& h_docs = h_it->second;
  if (h_docs.empty()) return 0;

  const int rows = std::min<int>(t.table.num_body_rows(),
                                 options_.max_pmi_rows);
  if (rows == 0) return 0;
  double sum = 0;
  for (int r = 0; r < rows; ++r) {
    const std::string& cell = t.table.body[r][c];
    if (cell.empty()) continue;
    auto b_it = b_cache_.find(cell);
    if (b_it == b_cache_.end()) {
      b_it = b_cache_.emplace(cell, index_->MatchAllInContent({cell}))
                 .first;
    }
    const std::vector<TableId>& b_docs = b_it->second;
    if (b_docs.empty()) continue;
    std::vector<TableId> inter;
    std::set_intersection(h_docs.begin(), h_docs.end(), b_docs.begin(),
                          b_docs.end(), std::back_inserter(inter));
    const double overlap = static_cast<double>(inter.size());
    sum += overlap * overlap /
           (static_cast<double>(h_docs.size()) *
            static_cast<double>(b_docs.size()));
  }
  return sum / rows;
}

double FeatureComputer::TableRelevance(const Query& query,
                                       const CandidateTable& t) const {
  double total = 0;
  for (const QueryColumn& ql : query.cols) {
    double best = 0;
    for (int c = 0; c < t.num_cols; ++c) {
      best = std::max(best, Cover(ql, t, c));
    }
    total += best;
  }
  const double threshold = std::min<double>(query.q(), 1.5);
  const double clipped = total < threshold ? 0.0 : total;
  return clipped / query.q();
}

}  // namespace wwt
