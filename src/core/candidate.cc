#include "core/candidate.h"

#include <unordered_map>

namespace wwt {

namespace {

std::vector<TermId> KnownTerms(const std::string& text,
                               const CorpusStats& stats) {
  std::vector<TermId> out;
  for (const std::string& tok : stats.tokenizer().Tokenize(text)) {
    auto id = stats.vocab().Find(tok);
    if (id) out.push_back(*id);
  }
  return out;
}

}  // namespace

CandidateTable CandidateTable::Build(WebTable table,
                                     const CorpusStats& stats,
                                     double frequent_cell_fraction) {
  CandidateTable cand;
  cand.num_cols = table.num_cols;
  cand.num_header_rows = table.num_header_rows();

  for (const std::string& title : table.title_rows) {
    for (TermId t : KnownTerms(title, stats)) cand.title_terms.insert(t);
  }
  for (const ContextSnippet& snip : table.context) {
    for (TermId t : KnownTerms(snip.text, stats)) {
      cand.context_terms.insert(t);
    }
  }

  cand.cols.resize(table.num_cols);
  for (int c = 0; c < table.num_cols; ++c) {
    CandidateColumn& col = cand.cols[c];
    col.header_terms.resize(table.num_header_rows());
    for (int r = 0; r < table.num_header_rows(); ++r) {
      col.header_terms[r] =
          KnownTerms(table.header_rows[r][c], stats);
      for (TermId t : col.header_terms[r]) {
        col.header_vec.Add(t, stats.idf().Idf(t));
      }
    }

    // Content vector + frequent tokens.
    std::unordered_map<TermId, int> cells_with_term;
    int non_empty_cells = 0;
    for (const auto& row : table.body) {
      const std::string& cell = row[c];
      if (cell.empty()) continue;
      ++non_empty_cells;
      std::vector<TermId> terms = KnownTerms(cell, stats);
      std::unordered_set<TermId> distinct(terms.begin(), terms.end());
      for (TermId t : distinct) {
        col.content_vec.Add(t, stats.idf().Idf(t));
        ++cells_with_term[t];
      }
    }
    for (const auto& [t, n] : cells_with_term) {
      if (n >= 2 && n >= frequent_cell_fraction * non_empty_cells) {
        col.frequent_terms.insert(t);
        cand.frequent_terms_all.insert(t);
      }
    }
    // Candidate tables are shared read-only across query threads;
    // compact now so no reader ever sees a dirty vector.
    col.header_vec.Compact();
    col.content_vec.Compact();
  }

  cand.table = std::move(table);
  return cand;
}

}  // namespace wwt
