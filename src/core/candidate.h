// Copyright 2026 The WWT Authors
//
// CandidateTable: a web table preprocessed for the column mapper — every
// part of the table the SegSim similarity consults (title, context,
// per-row-per-column headers, frequent body tokens) tokenized once, plus
// per-column content vectors for the cross-table overlap machinery.

#ifndef WWT_CORE_CANDIDATE_H_
#define WWT_CORE_CANDIDATE_H_

#include <unordered_set>
#include <vector>

#include "index/table_index.h"
#include "table/web_table.h"
#include "text/tfidf.h"

namespace wwt {

/// Per-column preprocessed state.
struct CandidateColumn {
  /// Header tokens by header row: header_terms[r] = tokens of H_rc.
  std::vector<std::vector<TermId>> header_terms;
  /// Combined header vector (all rows), used by baselines and the
  /// cross-table column matching.
  SparseVector header_vec;
  /// TF-IDF vector over the column's body cells (content overlap).
  SparseVector content_vec;
  /// Tokens appearing in a large fraction of the column's cells — the
  /// "frequent content" part B of outSim (the "Black metal" signal).
  std::unordered_set<TermId> frequent_terms;
};

/// A candidate web table ready for mapping.
struct CandidateTable {
  WebTable table;  // owned copy (consolidation reads the body later)

  int num_cols = 0;
  int num_header_rows = 0;
  std::vector<CandidateColumn> cols;
  std::unordered_set<TermId> title_terms;    // part T
  std::unordered_set<TermId> context_terms;  // part C
  /// Union of all columns' frequent terms (part B is defined over "some
  /// column of t").
  std::unordered_set<TermId> frequent_terms_all;

  /// Tokenizes and vectorizes `table` against the corpus statistics (a
  /// TableIndex, or a CorpusSet's global stats view — identical vectors
  /// either way, because shard indexes carry the global vocabulary/IDF).
  /// `frequent_cell_fraction`: a token is "frequent content" when it
  /// appears in at least this fraction of the column's non-empty cells
  /// (and at least twice).
  static CandidateTable Build(WebTable table, const CorpusStats& stats,
                              double frequent_cell_fraction = 0.3);
};

}  // namespace wwt

#endif  // WWT_CORE_CANDIDATE_H_
