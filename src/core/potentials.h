// Copyright 2026 The WWT Authors
//
// Node potentials (Eq. 3) and the model weights of objective Eq. 9.
//
// Internal label encoding used across the mapper: 0..q-1 are query
// columns, q is `na`, q+1 is `nr` (so there are q+2 labels). The public
// MapResult converts to the external encoding shared with ground truth
// (kLabelNa / kLabelNr).

#ifndef WWT_CORE_POTENTIALS_H_
#define WWT_CORE_POTENTIALS_H_

#include <vector>

#include "core/features.h"

namespace wwt {

/// The six trainable parameters of Eq. 9 (w1..w5 in Eq. 3, we in Eq. 4).
/// Defaults are the output of the grid-search trainer on the synthetic
/// training split (bench/bench_train regenerates them).
struct MapperWeights {
  double w1 = 1.2;   // SegSim
  double w2 = 0.3;   // Cover
  double w3 = 0.0;   // PMI^2 (default off: §5.1 found it unhelpful)
  double w4 = 0.6;   // nr (irrelevant-table) potential scale
  double w5 = -0.5;  // bias; negative, vetoes weak similarity matches
  double we = 2.0;   // edge feature weight
};

/// Internal label helpers.
inline int NaLabel(int q) { return q; }
inline int NrLabel(int q) { return q + 1; }
inline int NumLabels(int q) { return q + 2; }

/// Converts an internal label to the external encoding of ground_truth.h.
int ToExternalLabel(int internal, int q);

/// Computes theta[c][label] per Eq. 3 for every column of `t`:
///   theta(tc, l)  = w1 SegSim + w2 Cover + w3 PMI^2 + w5   (l in 1..q)
///   theta(tc, nr) = w4 * (min(q, nt)/nt) * (1 - R(Q, t))
///   theta(tc, na) = 0
/// PMI^2 is only computed when use_pmi2 (it is the expensive feature).
std::vector<std::vector<double>> ComputeNodePotentials(
    const Query& query, const CandidateTable& t, FeatureComputer* features,
    const MapperWeights& weights, bool use_pmi2);

}  // namespace wwt

#endif  // WWT_CORE_POTENTIALS_H_
