#include "core/edges.h"

#include <unordered_map>

#include "flow/bipartite_matcher.h"

namespace wwt {

std::vector<CrossEdge> BuildCrossEdges(
    const std::vector<CandidateTable>& tables, const EdgeOptions& options) {
  const int n = static_cast<int>(tables.size());
  std::vector<CrossEdge> edges;

  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const CandidateTable& a = tables[i];
      const CandidateTable& b = tables[j];
      if (a.num_cols == 0 || b.num_cols == 0) continue;

      // Content + header similarity for the one-to-one matching.
      std::vector<std::vector<double>> content(
          a.num_cols, std::vector<double>(b.num_cols, 0));
      std::vector<std::vector<double>> match_w = content;
      bool any = false;
      for (int ca = 0; ca < a.num_cols; ++ca) {
        for (int cb = 0; cb < b.num_cols; ++cb) {
          double cs = SparseVector::Cosine(a.cols[ca].content_vec,
                                           b.cols[cb].content_vec);
          if (cs < options.sim_floor) continue;
          double hs = SparseVector::Cosine(a.cols[ca].header_vec,
                                           b.cols[cb].header_vec);
          content[ca][cb] = cs;
          match_w[ca][cb] = options.content_weight * cs +
                            (1.0 - options.content_weight) * hs;
          any = true;
        }
      }
      if (!any) continue;

      auto add_edge = [&](int ca, int cb) {
        CrossEdge e;
        e.t1 = i;
        e.c1 = ca;
        e.t2 = j;
        e.c2 = cb;
        e.sim = content[ca][cb];
        edges.push_back(e);
      };
      if (options.max_matching_only) {
        // Max-matching edges: one partner per column in this pair.
        BipartiteSpec spec;
        spec.left_cap.assign(a.num_cols, 1);
        spec.right_cap.assign(b.num_cols, 1);
        spec.weight = match_w;
        CapacitatedMatcher matcher(std::move(spec));
        for (const auto& [ca, cb] : matcher.Solve().edges) {
          if (content[ca][cb] >= options.sim_floor) add_edge(ca, cb);
        }
      } else {
        // Ablation: every similar pair gets an edge.
        for (int ca = 0; ca < a.num_cols; ++ca) {
          for (int cb = 0; cb < b.num_cols; ++cb) {
            if (content[ca][cb] >= options.sim_floor) add_edge(ca, cb);
          }
        }
      }
    }
  }

  // nsim normalization: per column, the sum of similarities to all of its
  // matched neighbors.
  std::unordered_map<int64_t, double> denom;
  auto key = [](int t, int c) {
    return static_cast<int64_t>(t) * 1000 + c;
  };
  for (const CrossEdge& e : edges) {
    denom[key(e.t1, e.c1)] += e.sim;
    denom[key(e.t2, e.c2)] += e.sim;
  }
  for (CrossEdge& e : edges) {
    if (options.normalize) {
      e.nsim_12 = e.sim / (options.nsim_lambda + denom[key(e.t1, e.c1)]);
      e.nsim_21 = e.sim / (options.nsim_lambda + denom[key(e.t2, e.c2)]);
    } else {
      e.nsim_12 = e.sim;
      e.nsim_21 = e.sim;
    }
  }
  return edges;
}

}  // namespace wwt
