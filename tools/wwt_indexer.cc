// Copyright 2026 The WWT Authors
//
// wwt_indexer: the offline half of the indexer/server split. Generates
// the synthetic corpus, builds the TableStore + TableIndex, and writes
// one versioned `.wwtsnap` snapshot — the frozen artifact wwt_serve and
// the benches cold-start from (the paper builds its Lucene index over
// 25M tables once and serves it frozen, §2.1).
//
// Usage:
//   wwt_indexer --out PATH [--scale S] [--seed N] [--noise-pages N]
//               [--force]
//   wwt_indexer --inspect PATH
//
// Without --force an existing snapshot that already matches the
// requested parameters is kept as-is (the CI cache path). Exit code 0 on
// success.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "index/snapshot.h"
#include "util/timer.h"

namespace {

void PrintInfo(const wwt::SnapshotInfo& info, const std::string& path) {
  std::printf("snapshot        %s\n", path.c_str());
  std::printf("format version  %u\n", info.format_version);
  std::printf("content hash    %016llx\n",
              static_cast<unsigned long long>(info.content_hash));
  std::printf("file size       %.2f MiB\n",
              static_cast<double>(info.file_bytes) / (1024.0 * 1024.0));
  std::printf("seed            %llu\n",
              static_cast<unsigned long long>(info.seed));
  std::printf("scale           %.3f\n", info.scale);
  std::printf("noise pages     %d\n", info.noise_pages);
  std::printf("tables          %llu\n",
              static_cast<unsigned long long>(info.num_tables));
  std::printf("queries         %llu\n",
              static_cast<unsigned long long>(info.num_queries));
  std::printf("vocabulary      %llu terms\n",
              static_cast<unsigned long long>(info.num_terms));
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --out PATH [--scale S] [--seed N]\n"
               "          [--noise-pages N] [--force]\n"
               "       %s --inspect PATH\n",
               argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out, inspect;
  wwt::CorpusOptions options;
  bool force = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      out = v;
    } else if (arg == "--inspect") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      inspect = v;
    } else if (arg == "--scale") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.scale = std::atof(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--noise-pages") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.noise_pages = std::atoi(v);
    } else if (arg == "--force") {
      force = true;
    } else {
      return Usage(argv[0]);
    }
  }

  if (!inspect.empty()) {
    wwt::StatusOr<wwt::SnapshotInfo> info = wwt::InspectSnapshot(inspect);
    if (!info.ok()) {
      std::fprintf(stderr, "wwt_indexer: %s\n",
                   info.status().ToString().c_str());
      return 1;
    }
    PrintInfo(*info, inspect);
    return 0;
  }
  if (out.empty()) return Usage(argv[0]);

  if (force) {
    // Ignore any existing file: generate and overwrite.
    std::remove(out.c_str());
  }
  wwt::WallTimer timer;
  wwt::BuildOrLoadResult result = wwt::BuildOrLoadCorpus(options, out);
  if (result.info.format_version == 0) {
    // BuildOrLoadCorpus tolerates a failed save (benches can serve the
    // in-memory corpus); the indexer's sole job is the artifact.
    std::fprintf(stderr, "wwt_indexer: snapshot was not written to '%s'\n",
                 out.c_str());
    return 1;
  }
  std::printf("%s snapshot in %.2f s\n",
              result.loaded ? "validated existing" : "built",
              timer.ElapsedSeconds());
  PrintInfo(result.info, out);
  return 0;
}
