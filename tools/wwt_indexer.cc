// Copyright 2026 The WWT Authors
//
// wwt_indexer: the offline half of the indexer/server split. Generates
// the synthetic corpus, builds the TableStore + TableIndex, and writes
// either one versioned `.wwtsnap` snapshot or — with `--shards N` — N
// deterministic shard snapshots plus a `.wwtset` manifest: contiguous,
// count-balanced table-id ranges, every shard carrying the GLOBAL
// vocabulary/IDF computed before partitioning, so wwt_serve's
// scatter-gathered answers are byte-identical to the unsharded engine
// (the paper builds its Lucene index over 25M tables once and serves it
// frozen, §2.1; the web-table serving line scales that by partitioning
// the corpus and merging per-partition retrieval).
//
// Usage:
//   wwt_indexer --out PATH [--scale S] [--seed N] [--noise-pages N]
//               [--shards N] [--force]
//   wwt_indexer --inspect PATH [--format text|json]
//
// Without --force an existing artifact (snapshot, or manifest + every
// shard) that already matches the requested parameters is kept as-is
// (the CI cache path). --inspect understands both `.wwtsnap` and
// `.wwtset` files; `--format json` emits one machine-readable object
// (version, content hash, per-section byte sizes, per-shard manifest
// entries) for scripting. Exit code 0 on success; every failure is one
// "wwt_indexer: ..." line on stderr and a non-zero exit.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fresh/delta_shard.h"
#include "index/snapshot.h"
#include "util/timer.h"

namespace {

void PrintInfo(const wwt::SnapshotInfo& info, const std::string& path) {
  std::printf("snapshot        %s\n", path.c_str());
  std::printf("format version  %u\n", info.format_version);
  std::printf("content hash    %016llx\n",
              static_cast<unsigned long long>(info.content_hash));
  std::printf("file size       %.2f MiB\n",
              static_cast<double>(info.file_bytes) / (1024.0 * 1024.0));
  std::printf("seed            %llu\n",
              static_cast<unsigned long long>(info.seed));
  std::printf("scale           %.3f\n", info.scale);
  std::printf("noise pages     %d\n", info.noise_pages);
  std::printf("tables          %llu\n",
              static_cast<unsigned long long>(info.num_tables));
  std::printf("queries         %llu\n",
              static_cast<unsigned long long>(info.num_queries));
  std::printf("vocabulary      %llu terms\n",
              static_cast<unsigned long long>(info.num_terms));
}

void PrintManifest(const wwt::SetManifest& m, const std::string& path) {
  std::printf("corpus set      %s\n", path.c_str());
  std::printf("format version  %u\n", m.format_version);
  std::printf("set hash        %016llx\n",
              static_cast<unsigned long long>(m.set_hash));
  std::printf("seed            %llu\n",
              static_cast<unsigned long long>(m.seed));
  std::printf("scale           %.3f\n", m.scale);
  std::printf("noise pages     %d\n", m.noise_pages);
  std::printf("tables          %llu\n",
              static_cast<unsigned long long>(m.num_tables));
  std::printf("shards          %zu\n", m.shards.size());
  for (size_t s = 0; s < m.shards.size(); ++s) {
    const wwt::ShardManifestEntry& e = m.shards[s];
    std::printf("  [%zu] %s  ids [%llu, %llu)  hash %016llx\n", s,
                e.file.c_str(),
                static_cast<unsigned long long>(e.first_table_id),
                static_cast<unsigned long long>(e.first_table_id +
                                                e.num_tables),
                static_cast<unsigned long long>(e.content_hash));
  }
}

void PrintInfoJson(const wwt::SnapshotInfo& info, const std::string& path) {
  std::printf("{\n");
  std::printf("  \"kind\": \"snapshot\",\n");
  std::printf("  \"path\": \"%s\",\n", path.c_str());
  std::printf("  \"format_version\": %u,\n", info.format_version);
  std::printf("  \"content_hash\": \"%016llx\",\n",
              static_cast<unsigned long long>(info.content_hash));
  std::printf("  \"file_bytes\": %llu,\n",
              static_cast<unsigned long long>(info.file_bytes));
  std::printf("  \"seed\": %llu,\n",
              static_cast<unsigned long long>(info.seed));
  std::printf("  \"scale\": %.6g,\n", info.scale);
  std::printf("  \"noise_pages\": %d,\n", info.noise_pages);
  std::printf("  \"tables\": %llu,\n",
              static_cast<unsigned long long>(info.num_tables));
  std::printf("  \"queries\": %llu,\n",
              static_cast<unsigned long long>(info.num_queries));
  std::printf("  \"terms\": %llu,\n",
              static_cast<unsigned long long>(info.num_terms));
  std::printf("  \"sections\": [");
  for (size_t s = 0; s < info.sections.size(); ++s) {
    std::printf("%s\n    {\"tag\": \"%s\", \"bytes\": %llu}",
                s == 0 ? "" : ",", info.sections[s].tag.c_str(),
                static_cast<unsigned long long>(info.sections[s].bytes));
  }
  std::printf("\n  ]\n}\n");
}

void PrintManifestJson(const wwt::SetManifest& m, const std::string& path) {
  std::printf("{\n");
  std::printf("  \"kind\": \"set\",\n");
  std::printf("  \"path\": \"%s\",\n", path.c_str());
  std::printf("  \"format_version\": %u,\n", m.format_version);
  std::printf("  \"content_hash\": \"%016llx\",\n",
              static_cast<unsigned long long>(m.set_hash));
  std::printf("  \"seed\": %llu,\n",
              static_cast<unsigned long long>(m.seed));
  std::printf("  \"scale\": %.6g,\n", m.scale);
  std::printf("  \"noise_pages\": %d,\n", m.noise_pages);
  std::printf("  \"tables\": %llu,\n",
              static_cast<unsigned long long>(m.num_tables));
  std::printf("  \"shards\": [");
  for (size_t s = 0; s < m.shards.size(); ++s) {
    const wwt::ShardManifestEntry& e = m.shards[s];
    std::printf(
        "%s\n    {\"file\": \"%s\", \"content_hash\": \"%016llx\", "
        "\"first_table_id\": %llu, \"num_tables\": %llu}",
        s == 0 ? "" : ",", e.file.c_str(),
        static_cast<unsigned long long>(e.content_hash),
        static_cast<unsigned long long>(e.first_table_id),
        static_cast<unsigned long long>(e.num_tables));
  }
  std::printf("\n  ]\n}\n");
}

void PrintJournal(const wwt::fresh::DeltaJournalInfo& info,
                  const std::string& path) {
  std::printf("delta journal   %s\n", path.c_str());
  std::printf("format version  %u\n", info.format_version);
  std::printf("base hash       %016llx\n",
              static_cast<unsigned long long>(info.base_hash));
  std::printf("base tables     %llu\n",
              static_cast<unsigned long long>(info.base_end_id));
  std::printf("file size       %.2f KiB\n",
              static_cast<double>(info.file_bytes) / 1024.0);
  std::printf("generation      %llu\n",
              static_cast<unsigned long long>(info.generation));
  std::printf("records         %llu\n",
              static_cast<unsigned long long>(info.num_records));
  std::printf("pending tables  %llu\n",
              static_cast<unsigned long long>(info.pending_tables));
  std::printf("overrides       %llu\n",
              static_cast<unsigned long long>(info.num_overrides));
  std::printf("tombstones      %llu\n",
              static_cast<unsigned long long>(info.num_tombstones));
  if (info.truncated) {
    std::printf("torn tail       yes (dropped on next open)\n");
  }
}

void PrintJournalJson(const wwt::fresh::DeltaJournalInfo& info,
                      const std::string& path) {
  std::printf("{\n");
  std::printf("  \"kind\": \"delta-journal\",\n");
  std::printf("  \"path\": \"%s\",\n", path.c_str());
  std::printf("  \"format_version\": %u,\n", info.format_version);
  std::printf("  \"base_hash\": \"%016llx\",\n",
              static_cast<unsigned long long>(info.base_hash));
  std::printf("  \"base_tables\": %llu,\n",
              static_cast<unsigned long long>(info.base_end_id));
  std::printf("  \"file_bytes\": %llu,\n",
              static_cast<unsigned long long>(info.file_bytes));
  std::printf("  \"generation\": %llu,\n",
              static_cast<unsigned long long>(info.generation));
  std::printf("  \"records\": %llu,\n",
              static_cast<unsigned long long>(info.num_records));
  std::printf("  \"pending_tables\": %llu,\n",
              static_cast<unsigned long long>(info.pending_tables));
  std::printf("  \"overrides\": %llu,\n",
              static_cast<unsigned long long>(info.num_overrides));
  std::printf("  \"tombstones\": %llu,\n",
              static_cast<unsigned long long>(info.num_tombstones));
  std::printf("  \"truncated\": %s\n", info.truncated ? "true" : "false");
  std::printf("}\n");
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --out PATH [--scale S] [--seed N]\n"
               "          [--noise-pages N] [--shards N] [--force]\n"
               "       %s --inspect PATH [--format text|json]\n",
               argv0, argv0);
  return 2;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "wwt_indexer: %s\n", message.c_str());
  return 1;
}

/// True when `manifest` (loaded from `path`) matches the requested
/// parameters AND every shard file it names still carries the recorded
/// content hash — the sharded equivalent of BuildOrLoadCorpus's
/// keep-if-fresh check.
bool ShardedSetIsFresh(const wwt::SetManifest& manifest,
                       const std::string& path,
                       const wwt::CorpusOptions& options, int shards) {
  // PartitionCorpus clamps the shard count to the table count, so a
  // matching set may legitimately carry fewer shards than requested.
  const uint64_t expected_shards =
      std::min<uint64_t>(static_cast<uint64_t>(shards),
                         std::max<uint64_t>(manifest.num_tables, 1));
  if (manifest.seed != options.seed || manifest.scale != options.scale ||
      manifest.noise_pages != options.noise_pages ||
      manifest.workload_hash != wwt::WorkloadFingerprint(options) ||
      manifest.shards.size() != expected_shards) {
    return false;
  }
  for (const wwt::ShardManifestEntry& entry : manifest.shards) {
    wwt::StatusOr<wwt::SnapshotInfo> info =
        wwt::InspectSnapshot(wwt::ResolveShardPath(path, entry.file));
    if (!info.ok() || info->content_hash != entry.content_hash) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out, inspect;
  std::string format = "text";
  wwt::CorpusOptions options;
  int shards = 1;
  bool shards_set = false;
  bool force = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      out = v;
    } else if (arg == "--inspect") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      inspect = v;
    } else if (arg == "--scale") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.scale = std::atof(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--format") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      format = v;
      if (format != "text" && format != "json") {
        return Fail("--format wants 'text' or 'json', got '" + format + "'");
      }
    } else if (arg == "--noise-pages") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.noise_pages = std::atoi(v);
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      shards = std::atoi(v);
      if (shards < 1) {
        return Fail(std::string("--shards wants a positive count, got '") +
                    v + "'");
      }
      shards_set = true;
    } else if (arg == "--force") {
      force = true;
    } else {
      return Usage(argv[0]);
    }
  }

  if (!inspect.empty()) {
    // Sniffed by magic like everything else: a freshness delta journal
    // (docs/FRESHNESS.md) reports its base binding and pending work.
    if (wwt::fresh::IsDeltaJournal(inspect)) {
      wwt::StatusOr<wwt::fresh::DeltaJournalInfo> journal =
          wwt::fresh::InspectDeltaJournal(inspect);
      if (!journal.ok()) return Fail(journal.status().ToString());
      if (format == "json") {
        PrintJournalJson(*journal, inspect);
      } else {
        PrintJournal(*journal, inspect);
      }
      return 0;
    }
    if (wwt::IsSetManifest(inspect)) {
      wwt::StatusOr<wwt::SetManifest> manifest =
          wwt::LoadSetManifest(inspect);
      if (!manifest.ok()) return Fail(manifest.status().ToString());
      if (format == "json") {
        PrintManifestJson(*manifest, inspect);
      } else {
        PrintManifest(*manifest, inspect);
      }
      return 0;
    }
    wwt::StatusOr<wwt::SnapshotInfo> info = wwt::InspectSnapshot(inspect);
    if (!info.ok()) return Fail(info.status().ToString());
    if (format == "json") {
      PrintInfoJson(*info, inspect);
    } else {
      PrintInfo(*info, inspect);
    }
    return 0;
  }
  if (out.empty()) return Usage(argv[0]);

  // ---- Sharded artifact: N shard snapshots + a .wwtset manifest. Any
  // explicit --shards writes a manifest — including N=1, whose set hash
  // equals the shard's snapshot hash, so scripting `--shards "$N"` is
  // consistent at every N.
  if (shards_set) {
    wwt::WallTimer timer;
    if (!force) {
      wwt::StatusOr<wwt::SetManifest> existing =
          wwt::LoadSetManifest(out);
      if (existing.ok() &&
          ShardedSetIsFresh(*existing, out, options, shards)) {
        std::printf("validated existing sharded set in %.2f s\n",
                    timer.ElapsedSeconds());
        PrintManifest(*existing, out);
        return 0;
      }
    }
    wwt::Corpus corpus = wwt::GenerateCorpus(options);
    wwt::SetManifest manifest;
    wwt::Status saved =
        wwt::SaveShardedSnapshot(corpus, options, out, shards, &manifest);
    if (!saved.ok()) return Fail(saved.ToString());
    std::printf("built sharded set in %.2f s\n", timer.ElapsedSeconds());
    PrintManifest(manifest, out);
    return 0;
  }

  if (force) {
    // Ignore any existing file: generate and overwrite.
    std::remove(out.c_str());
  }
  wwt::WallTimer timer;
  wwt::BuildOrLoadResult result = wwt::BuildOrLoadCorpus(options, out);
  if (result.info.format_version == 0) {
    // BuildOrLoadCorpus tolerates a failed save (benches can serve the
    // in-memory corpus); the indexer's sole job is the artifact.
    std::fprintf(stderr, "wwt_indexer: snapshot was not written to '%s'\n",
                 out.c_str());
    return 1;
  }
  std::printf("%s snapshot in %.2f s\n",
              result.loaded ? "validated existing" : "built",
              timer.ElapsedSeconds());
  PrintInfo(result.info, out);
  return 0;
}
