#!/usr/bin/env bash
# clang-tidy over the first-party sources, driven by the repo's
# .clang-tidy and the compile database CMake exports unconditionally
# (CMAKE_EXPORT_COMPILE_COMMANDS=ON).
#
#   tools/run_lint.sh [--fix] [--build-dir DIR] [paths...]
#
#   --fix          apply clang-tidy's suggested fixes in place (opt-in;
#                  never the default — fixes touch the working tree)
#   --build-dir    build tree holding compile_commands.json
#                  (default: ./build)
#   paths...       restrict linting to these files (default: every
#                  first-party .cc/.cpp under src/ tools/ bench/
#                  examples/ tests/ that the compile database knows)
#
# Exit codes (pinned by tests/run_lint_cli_test.sh):
#   0  clean (or fixes applied)
#   1  clang-tidy reported findings
#   2  usage error / missing compile_commands.json
#   3  clang-tidy not installed (CI installs it; local runs say so
#      instead of half-running)
set -u

usage() {
  echo "usage: tools/run_lint.sh [--fix] [--build-dir DIR] [paths...]" >&2
}

FIX=0
BUILD_DIR=build
PATHS=()
while [ $# -gt 0 ]; do
  case "$1" in
    --fix) FIX=1 ;;
    --build-dir)
      shift
      [ $# -gt 0 ] || { usage; exit 2; }
      BUILD_DIR="$1"
      ;;
    --help | -h)
      usage
      exit 0
      ;;
    --*)
      echo "run_lint.sh: unknown flag: $1" >&2
      usage
      exit 2
      ;;
    *) PATHS+=("$1") ;;
  esac
  shift
done

cd "$(dirname "$0")/.." || exit 2

# ${CLANG_TIDY:-clang-tidy} so CI (and the smoke test) can pin a binary.
TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" > /dev/null 2>&1; then
  echo "run_lint.sh: clang-tidy not found (looked for '$TIDY');" \
    "install it or set CLANG_TIDY" >&2
  exit 3
fi

DB="$BUILD_DIR/compile_commands.json"
if [ ! -f "$DB" ]; then
  echo "run_lint.sh: no compile database at $DB;" \
    "configure first: cmake -B $BUILD_DIR -S ." >&2
  exit 2
fi

if [ "${#PATHS[@]}" -eq 0 ]; then
  # Every first-party translation unit the compile database knows —
  # keeps third-party (bundled googletest) out without hand-listing.
  mapfile -t PATHS < <(
    find src tools bench examples tests \
      \( -name '*.cc' -o -name '*.cpp' \) -print | sort
  )
fi

FIX_ARGS=()
if [ "$FIX" -eq 1 ]; then
  FIX_ARGS=(--fix --fix-errors)
fi

# -quiet keeps the output to findings only; the exit code of clang-tidy
# itself (nonzero iff findings/errors) is the script's verdict.
FAILED=0
for f in "${PATHS[@]}"; do
  if ! "$TIDY" -p "$BUILD_DIR" -quiet "${FIX_ARGS[@]}" "$f"; then
    FAILED=1
  fi
done

if [ "$FAILED" -ne 0 ]; then
  echo "run_lint.sh: clang-tidy reported findings" >&2
  exit 1
fi
echo "run_lint.sh: clean (${#PATHS[@]} files)"
exit 0
