// Copyright 2026 The WWT Authors
//
// bench_compare — the CI perf-regression gate. Diffs a freshly written
// bench_throughput JSON (WWT_BENCH_JSON) against the committed baseline
// under bench/baseline/ and fails when a tracked metric regresses
// beyond its tolerance, or when any correctness flag in the current run
// is false. Refreshing the baseline is an explicit committed change,
// never something CI does silently.
//
//   bench_compare --baseline FILE --current FILE [--warn-only]
//
// Tracked metrics and tolerances:
//   * absolute throughput (serial_qps, probe wand_qps): regression when
//     current < baseline * (1 - 0.5). CI runners vary wildly between
//     runs, so only a halving is actionable signal.
//   * machine-normalized ratios (probe speedup, response_cache
//     hit_over_miss, shard_fanout vs_unsharded): regression when
//     current < baseline * (1 - 0.3). Same-machine ratios are far more
//     stable than raw QPS.
//   * correctness flags (identical_to_serial, probe_sweep identical):
//     must be true in the current run. A false flag fails the gate even
//     under --warn-only — it means answers changed, not that the runner
//     was slow.
//
// Exit codes: 0 ok (or perf regressions under --warn-only), 1 gate
// failure, 2 usage or parse error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

// ------------------------------------------------------------- JSON
// Minimal recursive-descent parser for the bench JSON dialect (objects,
// arrays, strings without exotic escapes, numbers, booleans, null).
// Self-contained so the gate needs no third-party dependency.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    bool ok = ParseValue(out);
    SkipSpace();
    return ok && pos_ == text_.size();
  }

  std::string error() const {
    return "JSON parse error near offset " + std::to_string(pos_);
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        char e = text_[pos_++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default: c = e; break;  // \" \\ \/ and anything else verbatim
        }
      }
      out->push_back(c);
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (Literal("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return true;
    }
    if (Literal("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return true;
    }
    if (Literal("null")) {
      out->kind = JsonValue::Kind::kNull;
      return true;
    }
    char* end = nullptr;
    out->number = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) return false;
    out->kind = JsonValue::Kind::kNumber;
    pos_ = static_cast<size_t>(end - text_.c_str());
    return true;
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ------------------------------------------------------------- gate

// CI runners vary wildly run to run, so only a halving of an absolute
// throughput number is actionable; same-machine ratios are much more
// stable and get a tighter band.
constexpr double kQpsTolerance = 0.5;
constexpr double kRatioTolerance = 0.3;

struct Gate {
  bool warn_only = false;
  int regressions = 0;
  int hard_failures = 0;
  int compared = 0;

  // One tracked numeric metric: regression when current falls below
  // baseline * (1 - tolerance). Missing on either side is reported but
  // only missing-in-current counts as a regression (the gate must not
  // silently pass when a metric disappears).
  void Numeric(const std::string& name, const JsonValue* baseline,
               const JsonValue* current, double tolerance) {
    if (baseline == nullptr ||
        baseline->kind != JsonValue::Kind::kNumber) {
      std::printf("  %-44s (not in baseline; skipped)\n", name.c_str());
      return;
    }
    if (current == nullptr || current->kind != JsonValue::Kind::kNumber) {
      std::printf("  %-44s MISSING in current run\n", name.c_str());
      ++regressions;
      return;
    }
    ++compared;
    const double floor = baseline->number * (1.0 - tolerance);
    const bool regressed = current->number < floor;
    std::printf("  %-44s %12.2f -> %12.2f  %s\n", name.c_str(),
                baseline->number, current->number,
                regressed ? "REGRESSED" : "ok");
    if (regressed) ++regressions;
  }

  // A correctness flag must be true in the current run; the baseline
  // value is irrelevant. False answers are a hard failure even under
  // --warn-only.
  void MustBeTrue(const std::string& name, const JsonValue* current) {
    if (current == nullptr || current->kind != JsonValue::Kind::kBool ||
        !current->boolean) {
      std::printf("  %-44s correctness flag is %s\n", name.c_str(),
                  current == nullptr ? "MISSING" : "FALSE");
      ++hard_failures;
      return;
    }
    ++compared;
  }
};

// Finds the entry of an array-of-objects whose integer fields match
// `keys` (e.g. shards=4, k=50). Returns nullptr when absent.
const JsonValue* MatchEntry(
    const JsonValue* array,
    const std::vector<std::pair<const char*, double>>& keys) {
  if (array == nullptr || array->kind != JsonValue::Kind::kArray) {
    return nullptr;
  }
  for (const JsonValue& entry : array->array) {
    bool all = true;
    for (const auto& [key, want] : keys) {
      const JsonValue* v = entry.Find(key);
      if (v == nullptr || v->kind != JsonValue::Kind::kNumber ||
          v->number != want) {
        all = false;
        break;
      }
    }
    if (all) return &entry;
  }
  return nullptr;
}

const JsonValue* Field(const JsonValue* object, const char* key) {
  return object == nullptr ? nullptr : object->Find(key);
}

bool LoadJson(const char* path, JsonValue* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path);
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  JsonParser parser(text);
  if (!parser.Parse(out)) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path,
                 parser.error().c_str());
    return false;
  }
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_compare --baseline FILE --current FILE "
               "[--warn-only]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* current_path = nullptr;
  bool warn_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--current" && i + 1 < argc) {
      current_path = argv[++i];
    } else if (arg == "--warn-only") {
      warn_only = true;
    } else {
      return Usage();
    }
  }
  if (baseline_path == nullptr || current_path == nullptr) return Usage();

  JsonValue baseline, current;
  if (!LoadJson(baseline_path, &baseline) ||
      !LoadJson(current_path, &current)) {
    return 2;
  }

  Gate gate;
  gate.warn_only = warn_only;
  std::printf("bench_compare: %s vs baseline %s\n", current_path,
              baseline_path);

  // Dispatch on the bench kind: bench_coldstart writes {"bench":
  // "coldstart", ...}; everything else is the bench_throughput shape.
  const JsonValue* kind = current.Find("bench");
  if (kind != nullptr && kind->kind == JsonValue::Kind::kString &&
      kind->str == "coldstart") {
    // Answers served from the v4 (zero-copy) load must match the v3
    // load byte for byte — a false flag is a hard failure.
    gate.MustBeTrue("identical", current.Find("identical"));
    // The headline ratio (v3 load seconds / v4 load seconds) is a
    // same-machine ratio, but cold-start times are tiny at small
    // scales, so the band is wide: regression only when the current
    // speedup falls below 20% of the recorded baseline.
    gate.Numeric("speedup", baseline.Find("speedup"),
                 current.Find("speedup"), 0.8);
    // RSS is reported for the trajectory, never gated: page-cache
    // behaviour on shared CI runners is not a stable signal.
    const JsonValue* rss3 = current.Find("rss_v3_kb");
    const JsonValue* rss4 = current.Find("rss_v4_kb");
    if (rss3 != nullptr && rss4 != nullptr) {
      std::printf("  %-44s %12.0f vs %12.0f  (reported only)\n",
                  "rss_kb (v3 vs v4)", rss3->number, rss4->number);
    }
    std::printf("bench_compare: %d metrics compared, %d regressed, "
                "%d correctness failures\n",
                gate.compared, gate.regressions, gate.hard_failures);
    if (gate.hard_failures > 0) return 1;
    if (gate.regressions > 0) {
      if (gate.warn_only) {
        std::printf(
            "bench_compare: regressions tolerated (--warn-only)\n");
        return 0;
      }
      return 1;
    }
    std::printf("bench_compare: gate passed\n");
    return 0;
  }

  // Correctness first: if the current run's answers diverged from the
  // serial reference the numbers below are meaningless.
  gate.MustBeTrue("identical_to_serial",
                  current.Find("identical_to_serial"));
  gate.MustBeTrue("response_cache.identical_to_serial",
                  Field(current.Find("response_cache"),
                        "identical_to_serial"));
  if (const JsonValue* sweep = current.Find("probe_sweep")) {
    for (const JsonValue& entry : sweep->array) {
      gate.MustBeTrue("probe_sweep.identical", entry.Find("identical"));
    }
  }

  gate.Numeric("serial_qps", baseline.Find("serial_qps"),
               current.Find("serial_qps"), kQpsTolerance);
  gate.Numeric("response_cache.hit_over_miss",
               Field(baseline.Find("response_cache"), "hit_over_miss"),
               Field(current.Find("response_cache"), "hit_over_miss"),
               kRatioTolerance);
  for (double shards : {2.0, 4.0, 8.0}) {
    const char* name[] = {"shard_fanout[2].vs_unsharded",
                          "shard_fanout[4].vs_unsharded",
                          "shard_fanout[8].vs_unsharded"};
    const int idx = shards == 2.0 ? 0 : shards == 4.0 ? 1 : 2;
    gate.Numeric(name[idx],
                 Field(MatchEntry(baseline.Find("shard_fanout"),
                                  {{"shards", shards}}),
                       "vs_unsharded"),
                 Field(MatchEntry(current.Find("shard_fanout"),
                                  {{"shards", shards}}),
                       "vs_unsharded"),
                 kRatioTolerance);
  }
  for (double shards : {1.0, 4.0}) {
    for (double k : {10.0, 50.0}) {
      const std::string tag = "probe_sweep[shards=" +
                              std::to_string(static_cast<int>(shards)) +
                              ",k=" +
                              std::to_string(static_cast<int>(k)) + "]";
      const JsonValue* b = MatchEntry(baseline.Find("probe_sweep"),
                                      {{"shards", shards}, {"k", k}});
      const JsonValue* c = MatchEntry(current.Find("probe_sweep"),
                                      {{"shards", shards}, {"k", k}});
      gate.Numeric(tag + ".wand_qps", Field(b, "wand_qps"),
                   Field(c, "wand_qps"), kQpsTolerance);
      gate.Numeric(tag + ".speedup", Field(b, "speedup"),
                   Field(c, "speedup"), kRatioTolerance);
    }
  }

  std::printf("bench_compare: %d metrics compared, %d regressed, "
              "%d correctness failures\n",
              gate.compared, gate.regressions, gate.hard_failures);
  if (gate.hard_failures > 0) return 1;
  if (gate.regressions > 0) {
    if (gate.warn_only) {
      std::printf("bench_compare: regressions tolerated (--warn-only)\n");
      return 0;
    }
    return 1;
  }
  std::printf("bench_compare: gate passed\n");
  return 0;
}
