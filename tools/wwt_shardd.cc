// Copyright 2026 The WWT Authors
//
// wwt_shardd: one shard-serving worker process for distributed serving
// (docs/DISTRIBUTED.md). Loads a corpus artifact — a single-shard
// `.wwtsnap` in the common deployment, or a `.wwtset` to serve every
// shard from one process — and answers per-shard top-k probes from a
// wwt_serve router over the framed RPC in src/net. The worker computes
// the same scores over the same snapshot bytes as the in-process
// engine, so routed answers stay byte-identical.
//
// Usage:
//   wwt_shardd --snapshot PATH [--listen ADDR] [--quiet]
//              [--chaos-delay-ms D]
//
// --listen takes "host:port" (port 0 = kernel-assigned) or
// "unix:/path"; the resolved endpoint is announced on stdout as
//
//   listening on ADDR
//
// (flushed, machine-parseable — scripts read this line to wire the
// router). --chaos-delay-ms stalls every probe by D ms before
// answering: the fault-injection knob the chaos tests use to exercise
// hedging and deadline propagation. SIGINT/SIGTERM stop the worker
// gracefully (drain, join, stats on stderr).
//
// Error contract: load or bind failures exit non-zero with a one-line
// "wwt_shardd: ..." diagnostic; malformed requests never crash the
// worker (they are clean error replies or closed connections).

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "index/corpus_set.h"
#include "net/shard_server.h"
#include "util/timer.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --snapshot PATH [--listen ADDR] [--quiet]\n"
               "          [--chaos-delay-ms D]\n",
               argv0);
  return 2;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "wwt_shardd: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string snapshot_path;
  std::string listen = "127.0.0.1:0";
  double chaos_delay_ms = 0;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--snapshot") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      snapshot_path = v;
    } else if (arg == "--listen") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      listen = v;
    } else if (arg == "--chaos-delay-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      char* end = nullptr;
      chaos_delay_ms = std::strtod(v, &end);
      if (end == v || *end != '\0' || chaos_delay_ms < 0) {
        return Fail(std::string("--chaos-delay-ms wants a non-negative "
                                "number of milliseconds, got '") +
                    v + "'");
      }
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (snapshot_path.empty()) return Usage(argv[0]);

  // Block the shutdown signals before any thread spawns, so every
  // server thread inherits the mask and sigwait below is the one
  // delivery point.
  sigset_t shutdown_signals;
  sigemptyset(&shutdown_signals);
  sigaddset(&shutdown_signals, SIGINT);
  sigaddset(&shutdown_signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &shutdown_signals, nullptr);

  wwt::WallTimer load_timer;
  wwt::StatusOr<wwt::OpenCorpusResult> opened =
      wwt::OpenCorpus(snapshot_path);
  if (!opened.ok()) return Fail(opened.status().ToString());

  wwt::net::ShardServerOptions options;
  options.listen = listen;
  options.chaos_probe_delay_s = chaos_delay_ms / 1e3;
  wwt::StatusOr<std::unique_ptr<wwt::net::ShardServer>> server =
      wwt::net::ShardServer::Start(opened->corpus, options);
  if (!server.ok()) return Fail(server.status().ToString());

  if (!quiet) {
    std::fprintf(
        stderr,
        "wwt_shardd: serving %zu shard(s), %llu tables (hash %016llx) "
        "from %s, loaded in %.3f s%s\n",
        opened->corpus->num_shards(),
        static_cast<unsigned long long>(opened->corpus->num_tables()),
        static_cast<unsigned long long>(opened->corpus->content_hash()),
        snapshot_path.c_str(), load_timer.ElapsedSeconds(),
        chaos_delay_ms > 0 ? " [CHAOS: probe delay injected]" : "");
  }
  // The wiring line scripts parse; everything else goes to stderr.
  std::printf("listening on %s\n", (*server)->address().c_str());
  std::fflush(stdout);

  int signal_number = 0;
  sigwait(&shutdown_signals, &signal_number);
  (*server)->Stop();
  const wwt::net::ShardServer::Stats stats = (*server)->GetStats();
  if (!quiet) {
    std::fprintf(stderr,
                 "wwt_shardd: stopped on signal %d after %llu probes over "
                 "%llu connections (%llu errors)\n",
                 signal_number,
                 static_cast<unsigned long long>(stats.probes),
                 static_cast<unsigned long long>(stats.connections),
                 static_cast<unsigned long long>(stats.errors));
  }
  return 0;
}
