// Copyright 2026 The WWT Authors
//
// wwt_serve: the online half of the indexer/server split, now fronted by
// WwtService. Cold-starts from a `.wwtsnap` snapshot (memory-mapped when
// the platform allows) or a `.wwtset` sharded-corpus manifest written by
// `wwt_indexer --shards` (every shard loaded and served as one
// atomically-swappable set, probes scatter-gathered per shard), then
// serves column-keyword queries three ways:
//
//   * batch over the snapshot's stored workload (default, --batch-mult)
//   * batch over a --queries file (one query per line, columns '|')
//   * --stdin line protocol: one query per line on stdin, one response
//     line on stdout per query, in input order, flushed as answered.
//     Lines are submitted asynchronously as they arrive (a bounded
//     pipeline over WwtService::Submit), so a fast producer builds a
//     real queue — where --deadline-ms expires stragglers — while an
//     interactive user still sees each answer as soon as it is ready.
//
// Output is human text or, with --format json, one JSON object per
// query plus a summary object (machine-consumable; strings escaped).
//
// Error contract: every failure path — missing/corrupt snapshot,
// unreadable or queryless --queries file, a rejected request — exits
// non-zero with a one-line "wwt_serve: ..." diagnostic on stderr,
// never a crash or silent empty output.
//
// Usage:
//   wwt_serve --snapshot PATH [--threads N] [--batch-mult M]
//             [--queries FILE | --stdin] [--format text|json]
//             [--deadline-ms D] [--quiet]
//             [--cache-mb MB] [--cache-ttl-ms T | --no-cache]
//             [--k K] [--scorer wand|exhaustive]
//             [--worker ADDR[,ADDR...]]... [--hedge-ms H]
//             [--rpc-timeout-ms T] [--on-dead-shard fail|partial]
//
// Router mode (docs/DISTRIBUTED.md): one --worker per shard, in shard
// order, each a comma-separated replica list of wwt_shardd endpoints.
// The snapshot still loads locally (stats + table reads + the answer
// pipeline); only the per-shard top-k probes scatter to the workers,
// and the merged answers are byte-identical to in-process serving
// (compare the per-query "digest" fields). --hedge-ms launches the
// probe on the next replica when one goes quiet; --rpc-timeout-ms caps
// one probe RPC; --on-dead-shard picks between failing the query and
// serving an explicitly marked partial answer when a shard has no
// live worker.
//
// --k overrides the top-k of BOTH index probes; --scorer picks the
// probe algorithm (block-max WAND by default, exhaustive as the
// reference — answers are identical either way, see docs/RETRIEVAL.md).
// Both land in the summary so recorded runs identify their scorer.
//
// --deadline-ms requires --stdin: only there is a request stamped when
// it arrives, making the deadline genuinely per-query. Batch mode
// builds every request up front, where one absolute deadline would
// spuriously expire tail queries as the batch drains.
//
// The fingerprint-keyed response cache is on by default (--cache-mb 64,
// no TTL): repeated queries are answered from memory, concurrent
// identical queries coalesce onto one execution, and a snapshot swap
// can never serve a stale answer (the corpus hash is inside the cache
// key). --no-cache disables it; the summary reports hit/miss/eviction
// counters either way.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "index/snapshot.h"
#include "index/table_index.h"
#include "net/shard_client.h"
#include "util/hash.h"
#include "util/thread_annotations.h"
#include "util/timer.h"
#include "wwt/service.h"

namespace {

/// "a | b | c" -> {"a", "b", "c"}, trimmed. A line that is entirely
/// whitespace is no query at all and yields an empty vector (callers
/// skip it); a line WITH separators keeps every column — including
/// empty ones ("a||b", "a|b|") — so ValidateQueryRequest rejects the
/// malformed query instead of silently collapsing it into a different
/// one. Both input modes (--stdin and --queries) share this contract.
std::vector<std::string> SplitColumns(const std::string& line) {
  if (line.find_first_not_of(" \t\r") == std::string::npos) return {};
  std::vector<std::string> cols;
  size_t start = 0;
  for (;;) {
    const size_t bar = line.find('|', start);
    const std::string col =
        bar == std::string::npos ? line.substr(start)
                                 : line.substr(start, bar - start);
    const size_t begin = col.find_first_not_of(" \t\r");
    if (begin == std::string::npos) {
      cols.emplace_back();
    } else {
      const size_t end = col.find_last_not_of(" \t\r");
      cols.push_back(col.substr(begin, end - begin + 1));
    }
    if (bar == std::string::npos) break;
    start = bar + 1;
  }
  return cols;
}

/// "ADDR,ADDR,..." -> the replica list for one shard's --worker flag.
std::vector<std::string> SplitReplicas(const std::string& spec) {
  std::vector<std::string> replicas;
  size_t start = 0;
  for (;;) {
    const size_t comma = spec.find(',', start);
    replicas.push_back(comma == std::string::npos
                           ? spec.substr(start)
                           : spec.substr(start, comma - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return replicas;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// One response as a single JSON line (the --format json per-query
/// record, also the --stdin json protocol).
void PrintJsonResponse(const wwt::QueryResponse& r, int max_rows) {
  std::printf("{\"tag\": \"%s\", \"status\": \"%s\"",
              JsonEscape(r.tag).c_str(),
              JsonEscape(r.status.ok() ? "OK" : r.status.ToString()).c_str());
  if (r.ok()) {
    // The digest hash is the byte-identity handle: two runs (e.g. the
    // in-process engine vs the scatter-gather router) answered
    // identically iff these values match query for query.
    std::printf(", \"fingerprint\": \"%016llx\", \"corpus_hash\": "
                "\"%016llx\", \"digest\": \"%016llx\", \"partial\": %s, "
                "\"rows\": %zu, \"candidates\": %zu, "
                "\"latency_ms\": %.3f, \"queue_ms\": %.3f, "
                "\"cached\": %s, \"answer\": [",
                static_cast<unsigned long long>(r.fingerprint),
                static_cast<unsigned long long>(r.corpus_hash),
                static_cast<unsigned long long>(
                    wwt::Fnv1a(wwt::ResultDigest(r))),
                r.partial ? "true" : "false",
                r.answer.rows.size(), r.retrieval.tables.size(),
                r.execute_seconds * 1e3, r.queue_seconds * 1e3,
                r.served_from_cache ? "true" : "false");
    const size_t shown =
        std::min<size_t>(r.answer.rows.size(),
                         max_rows < 0 ? r.answer.rows.size()
                                      : static_cast<size_t>(max_rows));
    for (size_t i = 0; i < shown; ++i) {
      const wwt::AnswerRow& row = r.answer.rows[i];
      std::printf("%s{\"cells\": [", i > 0 ? ", " : "");
      for (size_t c = 0; c < row.cells.size(); ++c) {
        std::printf("%s\"%s\"", c > 0 ? ", " : "",
                    JsonEscape(row.cells[c]).c_str());
      }
      std::printf("], \"support\": %d}", row.support);
    }
    std::printf("]");
  }
  std::printf("}\n");
}

void PrintTextResponse(const wwt::QueryResponse& r) {
  if (!r.ok()) {
    std::printf("%-40.40s ERROR %s\n", r.tag.c_str(),
                r.status.ToString().c_str());
    return;
  }
  std::printf("%-40.40s %4zu rows  %7.1f ms%s\n", r.tag.c_str(),
              r.answer.rows.size(), r.timing.Total() * 1e3,
              r.partial ? "  (partial: shard(s) down)" : "");
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --snapshot PATH [--threads N] [--batch-mult M]\n"
               "          [--queries FILE | --stdin] [--format text|json]\n"
               "          [--deadline-ms D] [--quiet]\n"
               "          [--cache-mb MB] [--cache-ttl-ms T | --no-cache]\n"
               "          [--k K] [--scorer wand|exhaustive]\n"
               "          [--worker ADDR[,ADDR...]]... [--hedge-ms H]\n"
               "          [--rpc-timeout-ms T] [--on-dead-shard "
               "fail|partial]\n",
               argv0);
  return 2;
}

/// The one-line failure exit every error path funnels through.
int Fail(const std::string& message) {
  std::fprintf(stderr, "wwt_serve: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string snapshot_path, queries_path, format = "text";
  int threads = 0;
  int batch_mult = 1;
  int probe_k = 0;  // 0 = engine default for both probes
  wwt::ProbeScorer scorer = wwt::ProbeScorer::kWand;
  double deadline_ms = 0;  // 0 = none
  double cache_mb = 64;    // response cache budget; see --no-cache
  double cache_ttl_ms = 0;  // 0 = entries never expire
  bool no_cache = false;
  bool cache_flag_set = false;
  bool quiet = false;
  bool use_stdin = false;
  bool batch_mult_set = false;
  // Router mode: one --worker per shard, commas separate replicas.
  std::vector<std::vector<std::string>> worker_groups;
  double hedge_ms = 0;         // 0 = no hedging
  double rpc_timeout_ms = 5000;
  bool rpc_timeout_set = false;
  bool on_dead_shard_set = false;
  wwt::ShardFailurePolicy on_dead_shard = wwt::ShardFailurePolicy::kFail;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--snapshot") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      snapshot_path = v;
    } else if (arg == "--queries") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      queries_path = v;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      threads = std::atoi(v);
    } else if (arg == "--batch-mult") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      batch_mult = std::max(1, std::atoi(v));
      batch_mult_set = true;
    } else if (arg == "--format") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      format = v;
      if (format != "text" && format != "json") return Usage(argv[0]);
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      char* end = nullptr;
      deadline_ms = std::strtod(v, &end);
      if (end == v || *end != '\0' || !(deadline_ms > 0)) {
        return Fail(std::string("--deadline-ms wants a positive number "
                                "of milliseconds, got '") +
                    v + "'");
      }
    } else if (arg == "--cache-mb") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      char* end = nullptr;
      cache_mb = std::strtod(v, &end);
      // The upper bound keeps cache_mb * 1 MiB inside size_t: an
      // out-of-range double-to-integer conversion is UB, which could
      // silently disable the cache the caller asked to enlarge.
      if (end == v || *end != '\0' || !(cache_mb > 0) ||
          !(cache_mb <= 1e12)) {
        return Fail(std::string("--cache-mb wants a number of megabytes "
                                "in (0, 1e12], got '") +
                    v + "'");
      }
      cache_flag_set = true;
    } else if (arg == "--cache-ttl-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      char* end = nullptr;
      cache_ttl_ms = std::strtod(v, &end);
      if (end == v || *end != '\0' || !(cache_ttl_ms > 0)) {
        return Fail(std::string("--cache-ttl-ms wants a positive number "
                                "of milliseconds, got '") +
                    v + "'");
      }
      cache_flag_set = true;
    } else if (arg == "--k") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      probe_k = std::atoi(v);
      if (probe_k < 1) {
        return Fail(std::string("--k wants a positive top-k, got '") + v +
                    "'");
      }
    } else if (arg == "--scorer") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      if (!wwt::ParseProbeScorer(v, &scorer)) {
        return Fail(std::string("--scorer wants 'wand' or 'exhaustive', "
                                "got '") +
                    v + "'");
      }
    } else if (arg == "--worker") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      std::vector<std::string> replicas = SplitReplicas(v);
      for (const std::string& replica : replicas) {
        if (replica.empty()) {
          return Fail(std::string("--worker wants ADDR[,ADDR...], got '") +
                      v + "'");
        }
      }
      worker_groups.push_back(std::move(replicas));
    } else if (arg == "--hedge-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      char* end = nullptr;
      hedge_ms = std::strtod(v, &end);
      if (end == v || *end != '\0' || !(hedge_ms > 0)) {
        return Fail(std::string("--hedge-ms wants a positive number of "
                                "milliseconds, got '") +
                    v + "'");
      }
    } else if (arg == "--rpc-timeout-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      char* end = nullptr;
      rpc_timeout_ms = std::strtod(v, &end);
      if (end == v || *end != '\0' || !(rpc_timeout_ms > 0)) {
        return Fail(std::string("--rpc-timeout-ms wants a positive number "
                                "of milliseconds, got '") +
                    v + "'");
      }
      rpc_timeout_set = true;
    } else if (arg == "--on-dead-shard") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      if (std::strcmp(v, "fail") == 0) {
        on_dead_shard = wwt::ShardFailurePolicy::kFail;
      } else if (std::strcmp(v, "partial") == 0) {
        on_dead_shard = wwt::ShardFailurePolicy::kPartial;
      } else {
        return Fail(std::string("--on-dead-shard wants 'fail' or "
                                "'partial', got '") +
                    v + "'");
      }
      on_dead_shard_set = true;
    } else if (arg == "--no-cache") {
      no_cache = true;
    } else if (arg == "--stdin") {
      use_stdin = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (snapshot_path.empty()) return Usage(argv[0]);
  if (use_stdin && !queries_path.empty()) return Usage(argv[0]);
  if (use_stdin && batch_mult_set) {
    return Fail("--batch-mult only applies to the stored-workload batch "
                "mode, not --stdin");
  }
  if (deadline_ms > 0 && !use_stdin) {
    return Fail("--deadline-ms requires --stdin (batch requests are "
                "built up front, so one absolute deadline would expire "
                "tail queries spuriously)");
  }
  if (no_cache && cache_flag_set) {
    return Fail("--no-cache conflicts with --cache-mb/--cache-ttl-ms");
  }
  if (worker_groups.empty() &&
      (hedge_ms > 0 || rpc_timeout_set || on_dead_shard_set)) {
    return Fail("--hedge-ms/--rpc-timeout-ms/--on-dead-shard configure "
                "router mode and require at least one --worker");
  }
  const bool json = format == "json";

  // Cold start: one file read instead of a corpus rebuild. Missing or
  // corrupt artifacts surface as a clean one-line error.
  wwt::WallTimer load_timer;
  wwt::ServiceOptions service_options;
  service_options.num_threads = threads;
  service_options.engine.scorer = scorer;
  if (probe_k > 0) {
    service_options.engine.probe1_k = probe_k;
    service_options.engine.probe2_k = probe_k;
  }
  if (!no_cache) {
    service_options.cache.capacity_bytes =
        static_cast<size_t>(cache_mb * 1024 * 1024);
    service_options.cache.ttl_seconds = cache_ttl_ms / 1e3;
  }
  service_options.engine.shard_failure = on_dead_shard;
  wwt::SnapshotInfo info;
  wwt::StatusOr<std::unique_ptr<wwt::WwtService>> service =
      wwt::WwtService::FromSnapshot(snapshot_path, service_options, &info);
  if (!service.ok()) return Fail(service.status().ToString());
  const double load_seconds = load_timer.ElapsedSeconds();
  const wwt::ServiceStats boot_stats = (*service)->Stats();
  if (!json) {
    // In --stdin mode stdout carries exactly one response line per
    // query (the pipeline protocol), so the banner goes to stderr.
    std::fprintf(
        use_stdin ? stderr : stdout,
        "loaded %llu tables in %zu shard(s), %llu terms from %s in "
        "%.3f s (format v%u, hash %016llx)\n",
        static_cast<unsigned long long>(info.num_tables),
        boot_stats.corpus_shards,
        static_cast<unsigned long long>(info.num_terms),
        snapshot_path.c_str(), load_seconds, info.format_version,
        static_cast<unsigned long long>(info.content_hash));
  }

  // ---- Router mode: scatter every per-shard index probe to wwt_shardd
  // workers instead of scanning locally. The corpus artifact still loads
  // here (stats, table reads and the answer pipeline stay local — cheap
  // under zero-copy v4); only the CPU-heavy top-k probes go remote, and
  // the merged answers are byte-identical to in-process serving.
  std::unique_ptr<wwt::net::RemoteProbeSet> remote_set;
  if (!worker_groups.empty()) {
    wwt::net::RemoteProbeOptions remote_options;
    remote_options.default_rpc_timeout_s = rpc_timeout_ms / 1e3;
    remote_options.hedge_after_s = hedge_ms / 1e3;
    remote_options.tolerate_unreachable =
        on_dead_shard == wwt::ShardFailurePolicy::kPartial;
    wwt::StatusOr<std::unique_ptr<wwt::net::RemoteProbeSet>> connected =
        wwt::net::RemoteProbeSet::Connect(*(*service)->corpus(),
                                          worker_groups, remote_options);
    if (!connected.ok()) return Fail(connected.status().ToString());
    remote_set = std::move(connected).value();
    const wwt::Status attached =
        (*service)->AttachRemoteProbes(remote_set->Probes());
    if (!attached.ok()) return Fail(attached.ToString());
    if (!json) {
      std::fprintf(use_stdin ? stderr : stdout,
                   "routing %zu shard probe(s) to workers (%s on dead "
                   "shard%s)\n",
                   remote_set->num_shards(),
                   on_dead_shard == wwt::ShardFailurePolicy::kPartial
                       ? "partial"
                       : "fail",
                   hedge_ms > 0 ? ", hedged" : "");
    }
  }

  // Per-shard router counters, as text lines (the --stdin diagnostics
  // channel and the text summary) or one JSON "workers" line.
  auto print_worker_text = [&](std::FILE* out) {
    if (remote_set == nullptr) return;
    for (const wwt::net::RemoteShardStats& w : remote_set->ShardStats()) {
      std::fprintf(out,
                   "worker shard %016llx @ %s: %llu probes, %llu failures, "
                   "%llu hedges, %llu reconnects, %s%s%s\n",
                   static_cast<unsigned long long>(w.shard_hash),
                   w.endpoints.c_str(),
                   static_cast<unsigned long long>(w.probes),
                   static_cast<unsigned long long>(w.failures),
                   static_cast<unsigned long long>(w.hedges),
                   static_cast<unsigned long long>(w.reconnects),
                   w.healthy ? "healthy" : "UNHEALTHY",
                   w.last_error.empty() ? "" : " — last error: ",
                   w.last_error.c_str());
    }
  };
  auto print_worker_json = [&]() {
    if (remote_set == nullptr) return;
    std::printf("{\"workers\": [");
    const std::vector<wwt::net::RemoteShardStats> stats =
        remote_set->ShardStats();
    for (size_t s = 0; s < stats.size(); ++s) {
      const wwt::net::RemoteShardStats& w = stats[s];
      std::printf("%s{\"shard\": \"%016llx\", \"endpoints\": \"%s\", "
                  "\"probes\": %llu, \"failures\": %llu, \"hedges\": %llu, "
                  "\"reconnects\": %llu, \"healthy\": %s, "
                  "\"last_error\": \"%s\"}",
                  s > 0 ? ", " : "",
                  static_cast<unsigned long long>(w.shard_hash),
                  JsonEscape(w.endpoints).c_str(),
                  static_cast<unsigned long long>(w.probes),
                  static_cast<unsigned long long>(w.failures),
                  static_cast<unsigned long long>(w.hedges),
                  static_cast<unsigned long long>(w.reconnects),
                  w.healthy ? "true" : "false",
                  JsonEscape(w.last_error).c_str());
    }
    std::printf("]}\n");
  };

  auto make_request = [&](std::vector<std::string> cols, std::string tag) {
    wwt::QueryRequest request =
        wwt::QueryRequest::Of(std::move(cols)).WithTag(std::move(tag));
    if (deadline_ms > 0) request.WithTimeout(deadline_ms / 1e3);
    return request;
  };

  // ---- Line-protocol streaming: the reader submits each stdin line as
  // it arrives; the printer thread drains responses in input order and
  // flushes one line each. The bounded pipeline is what makes
  // --deadline-ms real: a producer faster than the pool builds an
  // actual queue, and stragglers expire in it.
  if (use_stdin) {
    wwt::Mutex mu;
    wwt::CondVar cv;
    std::deque<std::future<wwt::QueryResponse>> pending;
    bool input_done = false;
    // Printer-owned until join. Deadline expiries are configured load
    // shedding (--deadline-ms), not service failure: counted apart so
    // they don't flip the exit code.
    size_t served = 0, failed = 0, expired = 0, cache_hits = 0;
    const size_t window =
        static_cast<size_t>(std::max(4, 2 * (*service)->num_threads()));

    std::thread printer([&] {
      for (;;) {
        std::future<wwt::QueryResponse> next;
        {
          wwt::MutexLock lock(mu);
          while (!input_done && pending.empty()) cv.Wait(mu);
          if (pending.empty()) return;  // input_done and drained
          next = std::move(pending.front());
          pending.pop_front();
        }
        cv.NotifyAll();  // reader may be waiting for window space
        wwt::QueryResponse response = next.get();
        if (response.ok()) {
          ++served;
          cache_hits += response.served_from_cache;
        } else if (response.status.IsDeadlineExceeded()) {
          ++expired;
        } else {
          ++failed;
        }
        if (json) {
          PrintJsonResponse(response, /*max_rows=*/quiet ? 0 : 10);
        } else if (quiet) {
          std::printf(
              "%s%s\n", response.ok() ? "ok " : "error ",
              response.ok()
                  ? std::to_string(response.answer.rows.size()).c_str()
                  : response.status.ToString().c_str());
        } else {
          PrintTextResponse(response);
        }
        std::fflush(stdout);
      }
    });

    std::string line;
    while (std::getline(std::cin, line)) {
      std::vector<std::string> cols = SplitColumns(line);
      if (cols.empty()) continue;
      std::future<wwt::QueryResponse> future =
          (*service)->Submit(make_request(std::move(cols), line));
      {
        wwt::MutexLock lock(mu);
        while (pending.size() >= window) cv.Wait(mu);
        pending.push_back(std::move(future));
      }
      cv.NotifyAll();
    }
    {
      wwt::MutexLock lock(mu);
      input_done = true;
    }
    cv.NotifyAll();
    printer.join();

    // The summary is diagnostics, not a success banner: it prints
    // before EVERY exit, so a failed run still reports what it served
    // up to that point.
    std::fprintf(stderr, "served %zu queries, %zu expired, %zu from cache\n",
                 served, expired, cache_hits);
    print_worker_text(stderr);
    // The error contract holds in every format: any rejected request
    // fails the run with a one-line stderr diagnostic. Deadline
    // expiries alone keep exit 0 — they are the shedding the operator
    // asked for, visible per-line and in the summary.
    if (failed > 0) {
      return Fail(std::to_string(failed) + " of " +
                  std::to_string(served + failed + expired) +
                  " queries failed");
    }
    return 0;
  }

  // ---- Batch mode: --queries file, or the snapshot's stored workload.
  std::vector<wwt::QueryRequest> requests;
  if (!queries_path.empty()) {
    std::ifstream in(queries_path);
    if (!in) return Fail("cannot read queries file '" + queries_path + "'");
    std::string line;
    while (std::getline(in, line)) {
      std::vector<std::string> cols = SplitColumns(line);
      if (cols.empty()) continue;
      requests.push_back(make_request(std::move(cols), line));
    }
    if (requests.empty()) {
      return Fail("no queries parsed from '" + queries_path +
                  "' (expected one query per line, columns '|')");
    }
  } else {
    const std::vector<wwt::ResolvedQuery>& workload =
        (*service)->corpus()->queries();
    for (int m = 0; m < batch_mult; ++m) {
      for (const wwt::ResolvedQuery& rq : workload) {
        std::vector<std::string> cols;
        for (const wwt::QueryColumnSpec& col : rq.spec.columns) {
          cols.push_back(col.keywords);
        }
        requests.push_back(make_request(std::move(cols), rq.spec.name));
      }
    }
    if (requests.empty()) return Fail("snapshot stores no workload queries");
  }

  if (!json) {
    std::printf("serving %zu queries with %d thread(s)...\n",
                requests.size(), (*service)->num_threads());
  }
  wwt::BatchResponse batch = (*service)->RunBatch(std::move(requests));

  size_t failed = 0;
  for (const wwt::QueryResponse& r : batch.responses) failed += !r.ok();
  if (json) {
    for (const wwt::QueryResponse& r : batch.responses) {
      PrintJsonResponse(r, /*max_rows=*/quiet ? 0 : 10);
    }
  } else if (!quiet) {
    for (const wwt::QueryResponse& r : batch.responses) {
      PrintTextResponse(r);
    }
  }

  const wwt::BatchStats& s = batch.stats;
  const wwt::ServiceStats ss = (*service)->Stats();
  const wwt::ResponseCache::Stats& cs = ss.cache;
  if (json) {
    std::printf(
        "{\"summary\": {\"queries\": %zu, \"failed\": %zu, "
        "\"scorer\": \"%s\", \"probe_k\": [%d, %d], "
        "\"wall_seconds\": %.4f, \"qps\": %.2f, \"concurrency\": %d, "
        "\"latency_ms\": {\"mean\": %.3f, \"p50\": %.3f, \"p95\": %.3f, "
        "\"p99\": %.3f}, \"load_seconds\": %.4f, \"corpus_hash\": "
        "\"%016llx\", \"cache\": {\"enabled\": %s, "
        "\"served_from_cache\": %zu, \"hit_rate\": %.4f, \"hits\": %llu, "
        "\"misses\": %llu, \"coalesced\": %llu, \"inserts\": %llu, "
        "\"evictions\": %llu, \"entries\": %zu, \"bytes\": %zu}, "
        "\"stats\": {\"source\": \"%s\", \"corpus_hash\": \"%016llx\", "
        "\"shards\": %zu, \"tables\": %llu, \"format\": %u, "
        "\"mapped_bytes\": %llu, \"heap_bytes\": %llu, \"threads\": %d, "
        "\"shard_threads\": %d}}}\n",
        s.num_queries, failed,
        wwt::ProbeScorerName((*service)->engine_options().scorer),
        (*service)->engine_options().probe1_k,
        (*service)->engine_options().probe2_k, s.wall_seconds, s.qps,
        s.concurrency,
        s.latency.mean * 1e3, s.latency.p50 * 1e3, s.latency.p95 * 1e3,
        s.latency.p99 * 1e3, load_seconds,
        static_cast<unsigned long long>(info.content_hash),
        (*service)->cache_enabled() ? "true" : "false", s.cache_hits,
        s.cache_hit_rate, static_cast<unsigned long long>(cs.hits),
        static_cast<unsigned long long>(cs.misses),
        static_cast<unsigned long long>(cs.coalesced),
        static_cast<unsigned long long>(cs.inserts),
        static_cast<unsigned long long>(cs.evictions), cs.entries,
        cs.bytes, JsonEscape(ss.corpus_source).c_str(),
        static_cast<unsigned long long>(ss.corpus_hash),
        ss.corpus_shards,
        static_cast<unsigned long long>(ss.corpus_tables),
        ss.corpus_format,
        static_cast<unsigned long long>(ss.mapped_bytes),
        static_cast<unsigned long long>(ss.heap_bytes),
        ss.num_threads, ss.shard_threads);
  } else {
    std::printf("\n%zu queries in %.2f s — %.1f QPS at concurrency %d "
                "(%s scorer, k=%d/%d)\n",
                s.num_queries, s.wall_seconds, s.qps, s.concurrency,
                wwt::ProbeScorerName((*service)->engine_options().scorer),
                (*service)->engine_options().probe1_k,
                (*service)->engine_options().probe2_k);
    std::printf("latency ms: mean %.1f  p50 %.1f  p95 %.1f  p99 %.1f\n",
                s.latency.mean * 1e3, s.latency.p50 * 1e3,
                s.latency.p95 * 1e3, s.latency.p99 * 1e3);
    if ((*service)->cache_enabled()) {
      std::printf("cache: %zu/%zu served from cache (%.0f%% hit rate; "
                  "%llu hits, %llu coalesced, %llu evictions, %zu "
                  "entries, %.1f MB)\n",
                  s.cache_hits, s.num_queries, s.cache_hit_rate * 100,
                  static_cast<unsigned long long>(cs.hits),
                  static_cast<unsigned long long>(cs.coalesced),
                  static_cast<unsigned long long>(cs.evictions),
                  cs.entries, cs.bytes / (1024.0 * 1024.0));
    }
    std::printf("serving: %zu shard(s), %llu tables, %d worker "
                "thread(s)%s\n",
                ss.corpus_shards,
                static_cast<unsigned long long>(ss.corpus_tables),
                ss.num_threads,
                ss.shard_threads > 0 ? " + shard fan-out pool" : "");
    std::printf("memory: format v%u — %.1f MB mapped, %.1f MB heap%s\n",
                ss.corpus_format,
                ss.mapped_bytes / (1024.0 * 1024.0),
                ss.heap_bytes / (1024.0 * 1024.0),
                ss.mapped_bytes > 0 ? " (zero-copy serve)" : "");
    std::printf("cold start: %.3f s load vs corpus rebuild (see "
                "bench_throughput for the ratio)\n",
                load_seconds);
  }
  if (json) {
    print_worker_json();
  } else {
    print_worker_text(stdout);
  }
  if (failed > 0) {
    return Fail(std::to_string(failed) + " of " +
                std::to_string(s.num_queries) + " queries failed");
  }
  return 0;
}
