// Copyright 2026 The WWT Authors
//
// wwt_serve: the online half of the indexer/server split, now fronted by
// WwtService. Cold-starts from a `.wwtsnap` snapshot (memory-mapped when
// the platform allows) or a `.wwtset` sharded-corpus manifest written by
// `wwt_indexer --shards` (every shard loaded and served as one
// atomically-swappable set, probes scatter-gathered per shard), then
// serves column-keyword queries three ways:
//
//   * batch over the snapshot's stored workload (default, --batch-mult)
//   * batch over a --queries file (one query per line, columns '|')
//   * --stdin line protocol: one query per line on stdin, one response
//     line on stdout per query, in input order, flushed as answered.
//     Lines are submitted asynchronously as they arrive (a bounded
//     pipeline over WwtService::Submit), so a fast producer builds a
//     real queue — where --deadline-ms expires stragglers — while an
//     interactive user still sees each answer as soon as it is ready.
//
// Output is human text or, with --format json, one JSON object per
// query plus a summary object (machine-consumable; strings escaped).
//
// Error contract: every failure path — missing/corrupt snapshot,
// unreadable or queryless --queries file, a rejected request — exits
// non-zero with a one-line "wwt_serve: ..." diagnostic on stderr,
// never a crash or silent empty output.
//
// Usage:
//   wwt_serve --snapshot PATH [--threads N] [--batch-mult M]
//             [--queries FILE | --stdin] [--format text|json]
//             [--deadline-ms D] [--quiet]
//             [--cache-mb MB] [--cache-ttl-ms T | --no-cache]
//             [--k K] [--scorer wand|exhaustive]
//             [--worker ADDR[,ADDR...]]... [--hedge-ms H]
//             [--rpc-timeout-ms T] [--on-dead-shard fail|partial]
//             [--fresh | --journal PATH] [--mutations FILE]
//             [--merge-out PATH [--merge-now | --merge-shards N
//              --merge-max-pending N --merge-max-age-ms T
//              --merge-poll-ms T]]
//
// Freshness mode (docs/FRESHNESS.md): --fresh (memory-only) or
// --journal PATH (crash-tolerant, replayed at startup) layers a
// mutable delta over the frozen set. --mutations FILE applies one
// mutation per line before serving:
//
//   add | TITLE | H1 , H2 | r1c1 , r1c2 ; r2c1 , r2c2 [| CONTEXT]
//   update | ID | TITLE | HEADER | BODY [| CONTEXT]
//   override-title | ID | TEXT
//   override-header | ID | ROW | COL | TEXT
//   override-cell | ID | ROW | COL | TEXT
//   override-context | ID | TEXT
//   tombstone | ID
//
// --merge-now folds the delta into a fresh sharded set at --merge-out
// and swaps it in before serving; the daemon flags instead start a
// background fresh::MergeDaemon (--stdin only) that merges past a
// pending-count or pending-age threshold. Either way, served answers
// are byte-identical (per-query "digest") before, during and after
// the merge.
//
// SIGHUP (--stdin only): atomically reloads the --snapshot artifact
// from disk between lines — SwapCorpus + stale-cache purge; in-flight
// queries finish on the corpus they captured. A failed reload keeps
// the current corpus and warns on stderr.
//
// Router mode (docs/DISTRIBUTED.md): one --worker per shard, in shard
// order, each a comma-separated replica list of wwt_shardd endpoints.
// The snapshot still loads locally (stats + table reads + the answer
// pipeline); only the per-shard top-k probes scatter to the workers,
// and the merged answers are byte-identical to in-process serving
// (compare the per-query "digest" fields). --hedge-ms launches the
// probe on the next replica when one goes quiet; --rpc-timeout-ms caps
// one probe RPC; --on-dead-shard picks between failing the query and
// serving an explicitly marked partial answer when a shard has no
// live worker.
//
// --k overrides the top-k of BOTH index probes; --scorer picks the
// probe algorithm (block-max WAND by default, exhaustive as the
// reference — answers are identical either way, see docs/RETRIEVAL.md).
// Both land in the summary so recorded runs identify their scorer.
//
// --deadline-ms requires --stdin: only there is a request stamped when
// it arrives, making the deadline genuinely per-query. Batch mode
// builds every request up front, where one absolute deadline would
// spuriously expire tail queries as the batch drains.
//
// The fingerprint-keyed response cache is on by default (--cache-mb 64,
// no TTL): repeated queries are answered from memory, concurrent
// identical queries coalesce onto one execution, and a snapshot swap
// can never serve a stale answer (the corpus hash is inside the cache
// key). --no-cache disables it; the summary reports hit/miss/eviction
// counters either way.

#include <signal.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fresh/merge.h"
#include "index/snapshot.h"
#include "index/table_index.h"
#include "net/shard_client.h"
#include "util/hash.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "wwt/service.h"

namespace {

/// "a | b | c" -> {"a", "b", "c"}, trimmed. A line that is entirely
/// whitespace is no query at all and yields an empty vector (callers
/// skip it); a line WITH separators keeps every column — including
/// empty ones ("a||b", "a|b|") — so ValidateQueryRequest rejects the
/// malformed query instead of silently collapsing it into a different
/// one. Both input modes (--stdin and --queries) share this contract.
std::vector<std::string> SplitColumns(const std::string& line) {
  if (line.find_first_not_of(" \t\r") == std::string::npos) return {};
  std::vector<std::string> cols;
  size_t start = 0;
  for (;;) {
    const size_t bar = line.find('|', start);
    const std::string col =
        bar == std::string::npos ? line.substr(start)
                                 : line.substr(start, bar - start);
    const size_t begin = col.find_first_not_of(" \t\r");
    if (begin == std::string::npos) {
      cols.emplace_back();
    } else {
      const size_t end = col.find_last_not_of(" \t\r");
      cols.push_back(col.substr(begin, end - begin + 1));
    }
    if (bar == std::string::npos) break;
    start = bar + 1;
  }
  return cols;
}

/// "ADDR,ADDR,..." -> the replica list for one shard's --worker flag.
std::vector<std::string> SplitReplicas(const std::string& spec) {
  std::vector<std::string> replicas;
  size_t start = 0;
  for (;;) {
    const size_t comma = spec.find(',', start);
    replicas.push_back(comma == std::string::npos
                           ? spec.substr(start)
                           : spec.substr(start, comma - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return replicas;
}

/// Set by the SIGHUP handler, consumed by the --stdin reader loop.
volatile std::sig_atomic_t g_reload_requested = 0;

void HandleSighup(int) { g_reload_requested = 1; }

/// "a , b , c" -> {"a", "b", "c"}, trimmed; empty cells are kept (a
/// table cell may legitimately be blank).
std::vector<std::string> SplitTrim(const std::string& s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (;;) {
    const size_t at = s.find(sep, start);
    const std::string part = at == std::string::npos
                                 ? s.substr(start)
                                 : s.substr(start, at - start);
    const size_t begin = part.find_first_not_of(" \t\r");
    if (begin == std::string::npos) {
      parts.emplace_back();
    } else {
      const size_t end = part.find_last_not_of(" \t\r");
      parts.push_back(part.substr(begin, end - begin + 1));
    }
    if (at == std::string::npos) break;
    start = at + 1;
  }
  return parts;
}

/// "r1c1 , r1c2 ; r2c1 , r2c2" -> body rows (';' rows, ',' cells).
std::vector<std::vector<std::string>> ParseBodySpec(const std::string& s) {
  std::vector<std::vector<std::string>> rows;
  for (const std::string& row : SplitTrim(s, ';')) {
    rows.push_back(SplitTrim(row, ','));
  }
  return rows;
}

bool ParseTableId(const std::string& s, wwt::TableId* id) {
  char* end = nullptr;
  const unsigned long value = std::strtoul(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') return false;
  *id = static_cast<wwt::TableId>(value);
  return true;
}

bool ParseCellIndex(const std::string& s, uint32_t* index) {
  char* end = nullptr;
  const unsigned long value = std::strtoul(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') return false;
  *index = static_cast<uint32_t>(value);
  return true;
}

/// Builds the WebTable of an `add`/`update` mutation from its
/// TITLE | HEADER | BODY [| CONTEXT] fields.
wwt::WebTable TableFromFields(const std::vector<std::string>& f,
                              size_t first) {
  wwt::WebTable t;
  t.title_rows.push_back(f[first]);
  const std::vector<std::string> header = SplitTrim(f[first + 1], ',');
  t.header_rows.push_back(header);
  t.num_cols = static_cast<int>(header.size());
  t.body = ParseBodySpec(f[first + 2]);
  t.url = "fresh://mutation/" + f[first];
  if (f.size() > first + 3 && !f[first + 3].empty()) {
    t.context.push_back({f[first + 3], 1.0});
  }
  return t;
}

/// Applies one --mutations line (grammar in the header comment) to the
/// service's freshness layer. An all-whitespace or '#' comment line is
/// an OK no-op.
wwt::Status ApplyMutationLine(wwt::WwtService* service,
                              const std::string& line) {
  std::vector<std::string> f = SplitColumns(line);
  if (f.empty() || f[0].empty() || f[0][0] == '#') return wwt::Status::OK();
  const std::string& op = f[0];
  if (op == "add") {
    if (f.size() < 4) {
      return wwt::Status::InvalidArgument(
          "add wants TITLE | HEADER | BODY [| CONTEXT]");
    }
    return service->AddTable(TableFromFields(f, 1)).status();
  }
  // Every other op names a table id next.
  wwt::TableId id = 0;
  if (f.size() < 2 || !ParseTableId(f[1], &id)) {
    return wwt::Status::InvalidArgument("'", op,
                                        "' wants a numeric table id");
  }
  if (op == "update") {
    if (f.size() < 5) {
      return wwt::Status::InvalidArgument(
          "update wants ID | TITLE | HEADER | BODY [| CONTEXT]");
    }
    wwt::WebTable t = TableFromFields(f, 2);
    t.id = id;
    return service->UpdateTable(std::move(t));
  }
  if (op == "tombstone") {
    return service->TombstoneTable(id);
  }
  wwt::fresh::SummaryOverride patch;
  if (op == "override-title") {
    if (f.size() < 3) {
      return wwt::Status::InvalidArgument("override-title wants ID | TEXT");
    }
    patch.title = f[2];
  } else if (op == "override-context") {
    if (f.size() < 3) {
      return wwt::Status::InvalidArgument(
          "override-context wants ID | TEXT");
    }
    patch.context = f[2];
  } else if (op == "override-header" || op == "override-cell") {
    wwt::fresh::SummaryOverride::CellEdit edit;
    if (f.size() < 5 || !ParseCellIndex(f[2], &edit.row) ||
        !ParseCellIndex(f[3], &edit.col)) {
      return wwt::Status::InvalidArgument("'", op,
                                          "' wants ID | ROW | COL | TEXT");
    }
    edit.text = f[4];
    if (op == "override-header") {
      patch.header_cells.push_back(std::move(edit));
    } else {
      patch.body_cells.push_back(std::move(edit));
    }
  } else {
    return wwt::Status::InvalidArgument("unknown mutation op '", op, "'");
  }
  return service->OverrideSummary(id, patch);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// One response as a single JSON line (the --format json per-query
/// record, also the --stdin json protocol).
void PrintJsonResponse(const wwt::QueryResponse& r, int max_rows) {
  std::printf("{\"tag\": \"%s\", \"status\": \"%s\"",
              JsonEscape(r.tag).c_str(),
              JsonEscape(r.status.ok() ? "OK" : r.status.ToString()).c_str());
  if (r.ok()) {
    // The digest hash is the byte-identity handle: two runs (e.g. the
    // in-process engine vs the scatter-gather router) answered
    // identically iff these values match query for query.
    std::printf(", \"fingerprint\": \"%016llx\", \"corpus_hash\": "
                "\"%016llx\", \"digest\": \"%016llx\", \"partial\": %s, "
                "\"rows\": %zu, \"candidates\": %zu, "
                "\"latency_ms\": %.3f, \"queue_ms\": %.3f, "
                "\"cached\": %s, \"answer\": [",
                static_cast<unsigned long long>(r.fingerprint),
                static_cast<unsigned long long>(r.corpus_hash),
                static_cast<unsigned long long>(
                    wwt::Fnv1a(wwt::ResultDigest(r))),
                r.partial ? "true" : "false",
                r.answer.rows.size(), r.retrieval.tables.size(),
                r.execute_seconds * 1e3, r.queue_seconds * 1e3,
                r.served_from_cache ? "true" : "false");
    const size_t shown =
        std::min<size_t>(r.answer.rows.size(),
                         max_rows < 0 ? r.answer.rows.size()
                                      : static_cast<size_t>(max_rows));
    for (size_t i = 0; i < shown; ++i) {
      const wwt::AnswerRow& row = r.answer.rows[i];
      std::printf("%s{\"cells\": [", i > 0 ? ", " : "");
      for (size_t c = 0; c < row.cells.size(); ++c) {
        std::printf("%s\"%s\"", c > 0 ? ", " : "",
                    JsonEscape(row.cells[c]).c_str());
      }
      std::printf("], \"support\": %d}", row.support);
    }
    std::printf("]");
  }
  std::printf("}\n");
}

void PrintTextResponse(const wwt::QueryResponse& r) {
  if (!r.ok()) {
    std::printf("%-40.40s ERROR %s\n", r.tag.c_str(),
                r.status.ToString().c_str());
    return;
  }
  std::printf("%-40.40s %4zu rows  %7.1f ms%s\n", r.tag.c_str(),
              r.answer.rows.size(), r.timing.Total() * 1e3,
              r.partial ? "  (partial: shard(s) down)" : "");
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --snapshot PATH [--threads N] [--batch-mult M]\n"
               "          [--queries FILE | --stdin] [--format text|json]\n"
               "          [--deadline-ms D] [--quiet]\n"
               "          [--cache-mb MB] [--cache-ttl-ms T | --no-cache]\n"
               "          [--k K] [--scorer wand|exhaustive]\n"
               "          [--worker ADDR[,ADDR...]]... [--hedge-ms H]\n"
               "          [--rpc-timeout-ms T] [--on-dead-shard "
               "fail|partial]\n"
               "          [--fresh | --journal PATH] [--mutations FILE]\n"
               "          [--merge-out PATH [--merge-now | --merge-shards N\n"
               "           --merge-max-pending N --merge-max-age-ms T\n"
               "           --merge-poll-ms T]]\n",
               argv0);
  return 2;
}

/// The one-line failure exit every error path funnels through.
int Fail(const std::string& message) {
  std::fprintf(stderr, "wwt_serve: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string snapshot_path, queries_path, format = "text";
  int threads = 0;
  int batch_mult = 1;
  int probe_k = 0;  // 0 = engine default for both probes
  wwt::ProbeScorer scorer = wwt::ProbeScorer::kWand;
  double deadline_ms = 0;  // 0 = none
  double cache_mb = 64;    // response cache budget; see --no-cache
  double cache_ttl_ms = 0;  // 0 = entries never expire
  bool no_cache = false;
  bool cache_flag_set = false;
  bool quiet = false;
  bool use_stdin = false;
  bool batch_mult_set = false;
  // Router mode: one --worker per shard, commas separate replicas.
  std::vector<std::vector<std::string>> worker_groups;
  double hedge_ms = 0;         // 0 = no hedging
  double rpc_timeout_ms = 5000;
  bool rpc_timeout_set = false;
  bool on_dead_shard_set = false;
  wwt::ShardFailurePolicy on_dead_shard = wwt::ShardFailurePolicy::kFail;
  // Freshness mode (docs/FRESHNESS.md).
  bool fresh = false;
  std::string journal_path, mutations_path, merge_out;
  bool merge_now = false;
  int merge_shards = 0;  // 0 = keep the serving shard count
  // Daemon triggers; any flag set starts a background MergeDaemon.
  size_t merge_max_pending = 0;
  double merge_max_age_ms = 0;
  double merge_poll_ms = 0;
  bool daemon_flag_set = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--snapshot") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      snapshot_path = v;
    } else if (arg == "--queries") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      queries_path = v;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      threads = std::atoi(v);
    } else if (arg == "--batch-mult") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      batch_mult = std::max(1, std::atoi(v));
      batch_mult_set = true;
    } else if (arg == "--format") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      format = v;
      if (format != "text" && format != "json") return Usage(argv[0]);
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      char* end = nullptr;
      deadline_ms = std::strtod(v, &end);
      if (end == v || *end != '\0' || !(deadline_ms > 0)) {
        return Fail(std::string("--deadline-ms wants a positive number "
                                "of milliseconds, got '") +
                    v + "'");
      }
    } else if (arg == "--cache-mb") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      char* end = nullptr;
      cache_mb = std::strtod(v, &end);
      // The upper bound keeps cache_mb * 1 MiB inside size_t: an
      // out-of-range double-to-integer conversion is UB, which could
      // silently disable the cache the caller asked to enlarge.
      if (end == v || *end != '\0' || !(cache_mb > 0) ||
          !(cache_mb <= 1e12)) {
        return Fail(std::string("--cache-mb wants a number of megabytes "
                                "in (0, 1e12], got '") +
                    v + "'");
      }
      cache_flag_set = true;
    } else if (arg == "--cache-ttl-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      char* end = nullptr;
      cache_ttl_ms = std::strtod(v, &end);
      if (end == v || *end != '\0' || !(cache_ttl_ms > 0)) {
        return Fail(std::string("--cache-ttl-ms wants a positive number "
                                "of milliseconds, got '") +
                    v + "'");
      }
      cache_flag_set = true;
    } else if (arg == "--k") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      probe_k = std::atoi(v);
      if (probe_k < 1) {
        return Fail(std::string("--k wants a positive top-k, got '") + v +
                    "'");
      }
    } else if (arg == "--scorer") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      if (!wwt::ParseProbeScorer(v, &scorer)) {
        return Fail(std::string("--scorer wants 'wand' or 'exhaustive', "
                                "got '") +
                    v + "'");
      }
    } else if (arg == "--worker") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      std::vector<std::string> replicas = SplitReplicas(v);
      for (const std::string& replica : replicas) {
        if (replica.empty()) {
          return Fail(std::string("--worker wants ADDR[,ADDR...], got '") +
                      v + "'");
        }
      }
      worker_groups.push_back(std::move(replicas));
    } else if (arg == "--hedge-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      char* end = nullptr;
      hedge_ms = std::strtod(v, &end);
      if (end == v || *end != '\0' || !(hedge_ms > 0)) {
        return Fail(std::string("--hedge-ms wants a positive number of "
                                "milliseconds, got '") +
                    v + "'");
      }
    } else if (arg == "--rpc-timeout-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      char* end = nullptr;
      rpc_timeout_ms = std::strtod(v, &end);
      if (end == v || *end != '\0' || !(rpc_timeout_ms > 0)) {
        return Fail(std::string("--rpc-timeout-ms wants a positive number "
                                "of milliseconds, got '") +
                    v + "'");
      }
      rpc_timeout_set = true;
    } else if (arg == "--on-dead-shard") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      if (std::strcmp(v, "fail") == 0) {
        on_dead_shard = wwt::ShardFailurePolicy::kFail;
      } else if (std::strcmp(v, "partial") == 0) {
        on_dead_shard = wwt::ShardFailurePolicy::kPartial;
      } else {
        return Fail(std::string("--on-dead-shard wants 'fail' or "
                                "'partial', got '") +
                    v + "'");
      }
      on_dead_shard_set = true;
    } else if (arg == "--fresh") {
      fresh = true;
    } else if (arg == "--journal") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      journal_path = v;
      fresh = true;
    } else if (arg == "--mutations") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      mutations_path = v;
    } else if (arg == "--merge-out") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      merge_out = v;
    } else if (arg == "--merge-now") {
      merge_now = true;
    } else if (arg == "--merge-shards") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      merge_shards = std::atoi(v);
      if (merge_shards < 1) {
        return Fail(std::string("--merge-shards wants a positive shard "
                                "count, got '") +
                    v + "'");
      }
    } else if (arg == "--merge-max-pending") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      const int n = std::atoi(v);
      if (n < 1) {
        return Fail(std::string("--merge-max-pending wants a positive "
                                "count, got '") +
                    v + "'");
      }
      merge_max_pending = static_cast<size_t>(n);
      daemon_flag_set = true;
    } else if (arg == "--merge-max-age-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      char* end = nullptr;
      merge_max_age_ms = std::strtod(v, &end);
      if (end == v || *end != '\0' || !(merge_max_age_ms > 0)) {
        return Fail(std::string("--merge-max-age-ms wants a positive "
                                "number of milliseconds, got '") +
                    v + "'");
      }
      daemon_flag_set = true;
    } else if (arg == "--merge-poll-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      char* end = nullptr;
      merge_poll_ms = std::strtod(v, &end);
      if (end == v || *end != '\0' || !(merge_poll_ms > 0)) {
        return Fail(std::string("--merge-poll-ms wants a positive number "
                                "of milliseconds, got '") +
                    v + "'");
      }
      daemon_flag_set = true;
    } else if (arg == "--no-cache") {
      no_cache = true;
    } else if (arg == "--stdin") {
      use_stdin = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (snapshot_path.empty()) return Usage(argv[0]);
  if (use_stdin && !queries_path.empty()) return Usage(argv[0]);
  if (use_stdin && batch_mult_set) {
    return Fail("--batch-mult only applies to the stored-workload batch "
                "mode, not --stdin");
  }
  if (deadline_ms > 0 && !use_stdin) {
    return Fail("--deadline-ms requires --stdin (batch requests are "
                "built up front, so one absolute deadline would expire "
                "tail queries spuriously)");
  }
  if (no_cache && cache_flag_set) {
    return Fail("--no-cache conflicts with --cache-mb/--cache-ttl-ms");
  }
  if (worker_groups.empty() &&
      (hedge_ms > 0 || rpc_timeout_set || on_dead_shard_set)) {
    return Fail("--hedge-ms/--rpc-timeout-ms/--on-dead-shard configure "
                "router mode and require at least one --worker");
  }
  if (!fresh && (!mutations_path.empty() || !merge_out.empty() ||
                 merge_now || merge_shards > 0 || daemon_flag_set)) {
    return Fail("--mutations and the merge flags require freshness mode "
                "(--fresh or --journal PATH)");
  }
  if ((merge_now || merge_shards > 0 || daemon_flag_set) &&
      merge_out.empty()) {
    return Fail("--merge-now/--merge-shards and the daemon triggers "
                "write a merged set and require --merge-out PATH");
  }
  if (!merge_out.empty() && !merge_now && !daemon_flag_set) {
    return Fail("--merge-out needs a trigger: --merge-now or a daemon "
                "flag (--merge-max-pending/--merge-max-age-ms/"
                "--merge-poll-ms)");
  }
  if (merge_now && daemon_flag_set) {
    return Fail("--merge-now conflicts with the daemon triggers (pick "
                "one merge mode)");
  }
  if (daemon_flag_set && !use_stdin) {
    return Fail("the merge daemon runs for the life of the process and "
                "requires --stdin");
  }
  const bool json = format == "json";

  // Cold start: one file read instead of a corpus rebuild. Missing or
  // corrupt artifacts surface as a clean one-line error.
  wwt::WallTimer load_timer;
  wwt::ServiceOptions service_options;
  service_options.num_threads = threads;
  service_options.engine.scorer = scorer;
  if (probe_k > 0) {
    service_options.engine.probe1_k = probe_k;
    service_options.engine.probe2_k = probe_k;
  }
  if (!no_cache) {
    service_options.cache.capacity_bytes =
        static_cast<size_t>(cache_mb * 1024 * 1024);
    service_options.cache.ttl_seconds = cache_ttl_ms / 1e3;
  }
  service_options.engine.shard_failure = on_dead_shard;
  wwt::SnapshotInfo info;
  wwt::StatusOr<std::unique_ptr<wwt::WwtService>> service =
      wwt::WwtService::FromSnapshot(snapshot_path, service_options, &info);
  if (!service.ok()) return Fail(service.status().ToString());
  const double load_seconds = load_timer.ElapsedSeconds();
  const wwt::ServiceStats boot_stats = (*service)->Stats();
  if (!json) {
    // In --stdin mode stdout carries exactly one response line per
    // query (the pipeline protocol), so the banner goes to stderr.
    std::fprintf(
        use_stdin ? stderr : stdout,
        "loaded %llu tables in %zu shard(s), %llu terms from %s in "
        "%.3f s (format v%u, hash %016llx)\n",
        static_cast<unsigned long long>(info.num_tables),
        boot_stats.corpus_shards,
        static_cast<unsigned long long>(info.num_terms),
        snapshot_path.c_str(), load_seconds, info.format_version,
        static_cast<unsigned long long>(info.content_hash));
  }

  // ---- Freshness: layer the mutable delta over the frozen set, apply
  // the startup mutation stream, then (optionally) fold it right back
  // into a merged artifact. Order matters: a --merge-now run serves the
  // merged set, and its answers must be byte-identical to a run that
  // stopped before the merge (the per-query "digest" field is the
  // check CI performs).
  if (fresh) {
    const wwt::Status enabled = (*service)->EnableFreshness(journal_path);
    if (!enabled.ok()) return Fail(enabled.ToString());
    if (!mutations_path.empty()) {
      std::ifstream in(mutations_path);
      if (!in) {
        return Fail("cannot read mutations file '" + mutations_path + "'");
      }
      std::string line;
      size_t line_no = 0, applied = 0;
      while (std::getline(in, line)) {
        ++line_no;
        const std::vector<std::string> f = SplitColumns(line);
        if (f.empty() || f[0].empty() || f[0][0] == '#') continue;
        const wwt::Status status =
            ApplyMutationLine(service->get(), line);
        if (!status.ok()) {
          return Fail(mutations_path + ":" + std::to_string(line_no) +
                      ": " + status.ToString());
        }
        ++applied;
      }
      if (!json) {
        std::fprintf(use_stdin ? stderr : stdout,
                     "freshness: applied %zu mutation(s) from %s "
                     "(journal: %s)\n",
                     applied, mutations_path.c_str(),
                     journal_path.empty() ? "memory-only"
                                          : journal_path.c_str());
      }
    }
    if (merge_now) {
      const wwt::Status merged =
          (*service)->MergeDeltaToSet(merge_out, merge_shards);
      if (!merged.ok()) return Fail(merged.ToString());
      const wwt::ServiceStats after = (*service)->Stats();
      if (!json) {
        std::fprintf(use_stdin ? stderr : stdout,
                     "freshness: merged delta into %s (%llu tables, "
                     "hash %016llx)\n",
                     merge_out.c_str(),
                     static_cast<unsigned long long>(after.corpus_tables),
                     static_cast<unsigned long long>(after.corpus_hash));
      }
    }
  }

  // The background merge trigger (--stdin only). Declared daemon-last
  // so teardown joins the watcher before its pool and service die; the
  // delta_shard() share keeps the writer alive while the daemon
  // borrows it.
  std::shared_ptr<wwt::fresh::DeltaShard> daemon_delta;
  std::unique_ptr<wwt::ThreadPool> merge_pool;
  std::unique_ptr<wwt::fresh::MergeDaemon> merge_daemon;
  if (daemon_flag_set) {
    daemon_delta = (*service)->delta_shard();
    merge_pool = std::make_unique<wwt::ThreadPool>(1);
    wwt::fresh::MergeDaemonOptions daemon_options;
    if (merge_max_pending > 0) daemon_options.max_pending = merge_max_pending;
    daemon_options.max_age_seconds = merge_max_age_ms / 1e3;
    if (merge_poll_ms > 0) {
      daemon_options.poll_interval_seconds = merge_poll_ms / 1e3;
    }
    wwt::WwtService* raw_service = service->get();
    const std::string out = merge_out;
    const int shards = merge_shards;
    merge_daemon = std::make_unique<wwt::fresh::MergeDaemon>(
        daemon_delta.get(), merge_pool.get(),
        [raw_service, out, shards] {
          return raw_service->MergeDeltaToSet(out, shards);
        },
        daemon_options);
    if (!json) {
      std::fprintf(stderr,
                   "freshness: merge daemon watching (max pending %zu, "
                   "max age %.0f ms) -> %s\n",
                   daemon_options.max_pending, merge_max_age_ms,
                   merge_out.c_str());
    }
  }

  // ---- Router mode: scatter every per-shard index probe to wwt_shardd
  // workers instead of scanning locally. The corpus artifact still loads
  // here (stats, table reads and the answer pipeline stay local — cheap
  // under zero-copy v4); only the CPU-heavy top-k probes go remote, and
  // the merged answers are byte-identical to in-process serving.
  std::unique_ptr<wwt::net::RemoteProbeSet> remote_set;
  if (!worker_groups.empty()) {
    wwt::net::RemoteProbeOptions remote_options;
    remote_options.default_rpc_timeout_s = rpc_timeout_ms / 1e3;
    remote_options.hedge_after_s = hedge_ms / 1e3;
    remote_options.tolerate_unreachable =
        on_dead_shard == wwt::ShardFailurePolicy::kPartial;
    wwt::StatusOr<std::unique_ptr<wwt::net::RemoteProbeSet>> connected =
        wwt::net::RemoteProbeSet::Connect(*(*service)->corpus(),
                                          worker_groups, remote_options);
    if (!connected.ok()) return Fail(connected.status().ToString());
    remote_set = std::move(connected).value();
    const wwt::Status attached =
        (*service)->AttachRemoteProbes(remote_set->Probes());
    if (!attached.ok()) return Fail(attached.ToString());
    if (!json) {
      std::fprintf(use_stdin ? stderr : stdout,
                   "routing %zu shard probe(s) to workers (%s on dead "
                   "shard%s)\n",
                   remote_set->num_shards(),
                   on_dead_shard == wwt::ShardFailurePolicy::kPartial
                       ? "partial"
                       : "fail",
                   hedge_ms > 0 ? ", hedged" : "");
    }
  }

  // Per-shard router counters, as text lines (the --stdin diagnostics
  // channel and the text summary) or one JSON "workers" line.
  auto print_worker_text = [&](std::FILE* out) {
    if (remote_set == nullptr) return;
    for (const wwt::net::RemoteShardStats& w : remote_set->ShardStats()) {
      std::fprintf(out,
                   "worker shard %016llx @ %s: %llu probes, %llu failures, "
                   "%llu hedges, %llu reconnects, %s%s%s\n",
                   static_cast<unsigned long long>(w.shard_hash),
                   w.endpoints.c_str(),
                   static_cast<unsigned long long>(w.probes),
                   static_cast<unsigned long long>(w.failures),
                   static_cast<unsigned long long>(w.hedges),
                   static_cast<unsigned long long>(w.reconnects),
                   w.healthy ? "healthy" : "UNHEALTHY",
                   w.last_error.empty() ? "" : " — last error: ",
                   w.last_error.c_str());
    }
  };
  auto print_worker_json = [&]() {
    if (remote_set == nullptr) return;
    std::printf("{\"workers\": [");
    const std::vector<wwt::net::RemoteShardStats> stats =
        remote_set->ShardStats();
    for (size_t s = 0; s < stats.size(); ++s) {
      const wwt::net::RemoteShardStats& w = stats[s];
      std::printf("%s{\"shard\": \"%016llx\", \"endpoints\": \"%s\", "
                  "\"probes\": %llu, \"failures\": %llu, \"hedges\": %llu, "
                  "\"reconnects\": %llu, \"healthy\": %s, "
                  "\"last_error\": \"%s\"}",
                  s > 0 ? ", " : "",
                  static_cast<unsigned long long>(w.shard_hash),
                  JsonEscape(w.endpoints).c_str(),
                  static_cast<unsigned long long>(w.probes),
                  static_cast<unsigned long long>(w.failures),
                  static_cast<unsigned long long>(w.hedges),
                  static_cast<unsigned long long>(w.reconnects),
                  w.healthy ? "true" : "false",
                  JsonEscape(w.last_error).c_str());
    }
    std::printf("]}\n");
  };

  auto make_request = [&](std::vector<std::string> cols, std::string tag) {
    wwt::QueryRequest request =
        wwt::QueryRequest::Of(std::move(cols)).WithTag(std::move(tag));
    if (deadline_ms > 0) request.WithTimeout(deadline_ms / 1e3);
    return request;
  };

  // ---- Line-protocol streaming: the reader submits each stdin line as
  // it arrives; the printer thread drains responses in input order and
  // flushes one line each. The bounded pipeline is what makes
  // --deadline-ms real: a producer faster than the pool builds an
  // actual queue, and stragglers expire in it.
  if (use_stdin) {
    // SIGHUP = atomic snapshot reload (the operator re-indexed on
    // disk). No SA_RESTART: the signal must interrupt the blocking
    // getline so a reload happens even while idle between lines.
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = HandleSighup;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    sigaction(SIGHUP, &sa, nullptr);

    auto reload_snapshot = [&] {
      wwt::StatusOr<wwt::OpenCorpusResult> reopened =
          wwt::OpenCorpus(snapshot_path);
      if (!reopened.ok()) {
        std::fprintf(stderr,
                     "wwt_serve: reload of %s failed (%s); keeping the "
                     "current corpus\n",
                     snapshot_path.c_str(),
                     reopened.status().ToString().c_str());
        return;
      }
      // In-flight queries finish on the set they captured; the next
      // submission sees the reloaded one. The purge reclaims cache
      // entries keyed by the old hash (already unreachable).
      (*service)->SwapCorpus(reopened->corpus);
      (*service)->PurgeStaleCacheEntries();
      const wwt::ServiceStats now = (*service)->Stats();
      std::fprintf(stderr,
                   "reloaded %s: %llu tables in %zu shard(s), hash "
                   "%016llx\n",
                   snapshot_path.c_str(),
                   static_cast<unsigned long long>(now.corpus_tables),
                   now.corpus_shards,
                   static_cast<unsigned long long>(now.corpus_hash));
    };

    wwt::Mutex mu;
    wwt::CondVar cv;
    std::deque<std::future<wwt::QueryResponse>> pending;
    bool input_done = false;
    // Printer-owned until join. Deadline expiries are configured load
    // shedding (--deadline-ms), not service failure: counted apart so
    // they don't flip the exit code.
    size_t served = 0, failed = 0, expired = 0, cache_hits = 0;
    const size_t window =
        static_cast<size_t>(std::max(4, 2 * (*service)->num_threads()));

    std::thread printer([&] {
      for (;;) {
        std::future<wwt::QueryResponse> next;
        {
          wwt::MutexLock lock(mu);
          while (!input_done && pending.empty()) cv.Wait(mu);
          if (pending.empty()) return;  // input_done and drained
          next = std::move(pending.front());
          pending.pop_front();
        }
        cv.NotifyAll();  // reader may be waiting for window space
        wwt::QueryResponse response = next.get();
        if (response.ok()) {
          ++served;
          cache_hits += response.served_from_cache;
        } else if (response.status.IsDeadlineExceeded()) {
          ++expired;
        } else {
          ++failed;
        }
        if (json) {
          PrintJsonResponse(response, /*max_rows=*/quiet ? 0 : 10);
        } else if (quiet) {
          std::printf(
              "%s%s\n", response.ok() ? "ok " : "error ",
              response.ok()
                  ? std::to_string(response.answer.rows.size()).c_str()
                  : response.status.ToString().c_str());
        } else {
          PrintTextResponse(response);
        }
        std::fflush(stdout);
      }
    });

    std::string line;
    for (;;) {
      if (g_reload_requested != 0) {
        g_reload_requested = 0;
        reload_snapshot();
      }
      if (!std::getline(std::cin, line)) {
        // A SIGHUP mid-read fails the stream (EINTR surfaces as EOF
        // through synced stdio): clear both layers and loop — the
        // reload runs at the top, and a true end-of-input simply fails
        // again on the next pass with the flag consumed.
        if (g_reload_requested != 0) {
          std::cin.clear();
          std::clearerr(stdin);
          continue;
        }
        break;
      }
      std::vector<std::string> cols = SplitColumns(line);
      if (cols.empty()) continue;
      std::future<wwt::QueryResponse> future =
          (*service)->Submit(make_request(std::move(cols), line));
      {
        wwt::MutexLock lock(mu);
        while (pending.size() >= window) cv.Wait(mu);
        pending.push_back(std::move(future));
      }
      cv.NotifyAll();
    }
    {
      wwt::MutexLock lock(mu);
      input_done = true;
    }
    cv.NotifyAll();
    printer.join();

    // The summary is diagnostics, not a success banner: it prints
    // before EVERY exit, so a failed run still reports what it served
    // up to that point.
    std::fprintf(stderr, "served %zu queries, %zu expired, %zu from cache\n",
                 served, expired, cache_hits);
    const wwt::ServiceStats end_stats = (*service)->Stats();
    if (end_stats.freshness_enabled) {
      std::fprintf(stderr,
                   "freshness: %zu pending mutation(s) (%zu tables, %zu "
                   "overrides, %zu tombstones), generation %llu, hash "
                   "%016llx\n",
                   end_stats.delta_entries, end_stats.delta_tables,
                   end_stats.delta_overrides, end_stats.delta_tombstones,
                   static_cast<unsigned long long>(
                       end_stats.delta_generation),
                   static_cast<unsigned long long>(
                       end_stats.freshness_hash));
      if (merge_daemon != nullptr) {
        const wwt::fresh::MergeDaemon::Stats ds = merge_daemon->stats();
        std::fprintf(stderr,
                     "merge daemon: %llu merge(s), %llu failure(s), "
                     "last folded generation %llu\n",
                     static_cast<unsigned long long>(ds.merges),
                     static_cast<unsigned long long>(ds.failures),
                     static_cast<unsigned long long>(ds.last_generation));
      }
    }
    print_worker_text(stderr);
    // The error contract holds in every format: any rejected request
    // fails the run with a one-line stderr diagnostic. Deadline
    // expiries alone keep exit 0 — they are the shedding the operator
    // asked for, visible per-line and in the summary.
    if (failed > 0) {
      return Fail(std::to_string(failed) + " of " +
                  std::to_string(served + failed + expired) +
                  " queries failed");
    }
    return 0;
  }

  // ---- Batch mode: --queries file, or the snapshot's stored workload.
  std::vector<wwt::QueryRequest> requests;
  if (!queries_path.empty()) {
    std::ifstream in(queries_path);
    if (!in) return Fail("cannot read queries file '" + queries_path + "'");
    std::string line;
    while (std::getline(in, line)) {
      std::vector<std::string> cols = SplitColumns(line);
      if (cols.empty()) continue;
      requests.push_back(make_request(std::move(cols), line));
    }
    if (requests.empty()) {
      return Fail("no queries parsed from '" + queries_path +
                  "' (expected one query per line, columns '|')");
    }
  } else {
    const std::vector<wwt::ResolvedQuery>& workload =
        (*service)->corpus()->queries();
    for (int m = 0; m < batch_mult; ++m) {
      for (const wwt::ResolvedQuery& rq : workload) {
        std::vector<std::string> cols;
        for (const wwt::QueryColumnSpec& col : rq.spec.columns) {
          cols.push_back(col.keywords);
        }
        requests.push_back(make_request(std::move(cols), rq.spec.name));
      }
    }
    if (requests.empty()) return Fail("snapshot stores no workload queries");
  }

  if (!json) {
    std::printf("serving %zu queries with %d thread(s)...\n",
                requests.size(), (*service)->num_threads());
  }
  wwt::BatchResponse batch = (*service)->RunBatch(std::move(requests));

  size_t failed = 0;
  for (const wwt::QueryResponse& r : batch.responses) failed += !r.ok();
  if (json) {
    for (const wwt::QueryResponse& r : batch.responses) {
      PrintJsonResponse(r, /*max_rows=*/quiet ? 0 : 10);
    }
  } else if (!quiet) {
    for (const wwt::QueryResponse& r : batch.responses) {
      PrintTextResponse(r);
    }
  }

  const wwt::BatchStats& s = batch.stats;
  const wwt::ServiceStats ss = (*service)->Stats();
  const wwt::ResponseCache::Stats& cs = ss.cache;
  if (json) {
    std::printf(
        "{\"summary\": {\"queries\": %zu, \"failed\": %zu, "
        "\"scorer\": \"%s\", \"probe_k\": [%d, %d], "
        "\"wall_seconds\": %.4f, \"qps\": %.2f, \"concurrency\": %d, "
        "\"latency_ms\": {\"mean\": %.3f, \"p50\": %.3f, \"p95\": %.3f, "
        "\"p99\": %.3f}, \"load_seconds\": %.4f, \"corpus_hash\": "
        "\"%016llx\", \"cache\": {\"enabled\": %s, "
        "\"served_from_cache\": %zu, \"hit_rate\": %.4f, \"hits\": %llu, "
        "\"misses\": %llu, \"coalesced\": %llu, \"inserts\": %llu, "
        "\"evictions\": %llu, \"entries\": %zu, \"bytes\": %zu}, "
        "\"stats\": {\"source\": \"%s\", \"corpus_hash\": \"%016llx\", "
        "\"shards\": %zu, \"tables\": %llu, \"format\": %u, "
        "\"mapped_bytes\": %llu, \"heap_bytes\": %llu, \"threads\": %d, "
        "\"shard_threads\": %d}",
        s.num_queries, failed,
        wwt::ProbeScorerName((*service)->engine_options().scorer),
        (*service)->engine_options().probe1_k,
        (*service)->engine_options().probe2_k, s.wall_seconds, s.qps,
        s.concurrency,
        s.latency.mean * 1e3, s.latency.p50 * 1e3, s.latency.p95 * 1e3,
        s.latency.p99 * 1e3, load_seconds,
        static_cast<unsigned long long>(info.content_hash),
        (*service)->cache_enabled() ? "true" : "false", s.cache_hits,
        s.cache_hit_rate, static_cast<unsigned long long>(cs.hits),
        static_cast<unsigned long long>(cs.misses),
        static_cast<unsigned long long>(cs.coalesced),
        static_cast<unsigned long long>(cs.inserts),
        static_cast<unsigned long long>(cs.evictions), cs.entries,
        cs.bytes, JsonEscape(ss.corpus_source).c_str(),
        static_cast<unsigned long long>(ss.corpus_hash),
        ss.corpus_shards,
        static_cast<unsigned long long>(ss.corpus_tables),
        ss.corpus_format,
        static_cast<unsigned long long>(ss.mapped_bytes),
        static_cast<unsigned long long>(ss.heap_bytes),
        ss.num_threads, ss.shard_threads);
    if (ss.freshness_enabled) {
      std::printf(
          ", \"freshness\": {\"pending\": %zu, \"tables\": %zu, "
          "\"overrides\": %zu, \"tombstones\": %zu, \"generation\": %llu, "
          "\"hash\": \"%016llx\"}",
          ss.delta_entries, ss.delta_tables, ss.delta_overrides,
          ss.delta_tombstones,
          static_cast<unsigned long long>(ss.delta_generation),
          static_cast<unsigned long long>(ss.freshness_hash));
    }
    std::printf("}}\n");
  } else {
    std::printf("\n%zu queries in %.2f s — %.1f QPS at concurrency %d "
                "(%s scorer, k=%d/%d)\n",
                s.num_queries, s.wall_seconds, s.qps, s.concurrency,
                wwt::ProbeScorerName((*service)->engine_options().scorer),
                (*service)->engine_options().probe1_k,
                (*service)->engine_options().probe2_k);
    std::printf("latency ms: mean %.1f  p50 %.1f  p95 %.1f  p99 %.1f\n",
                s.latency.mean * 1e3, s.latency.p50 * 1e3,
                s.latency.p95 * 1e3, s.latency.p99 * 1e3);
    if ((*service)->cache_enabled()) {
      std::printf("cache: %zu/%zu served from cache (%.0f%% hit rate; "
                  "%llu hits, %llu coalesced, %llu evictions, %zu "
                  "entries, %.1f MB)\n",
                  s.cache_hits, s.num_queries, s.cache_hit_rate * 100,
                  static_cast<unsigned long long>(cs.hits),
                  static_cast<unsigned long long>(cs.coalesced),
                  static_cast<unsigned long long>(cs.evictions),
                  cs.entries, cs.bytes / (1024.0 * 1024.0));
    }
    std::printf("serving: %zu shard(s), %llu tables, %d worker "
                "thread(s)%s\n",
                ss.corpus_shards,
                static_cast<unsigned long long>(ss.corpus_tables),
                ss.num_threads,
                ss.shard_threads > 0 ? " + shard fan-out pool" : "");
    if (ss.freshness_enabled) {
      std::printf("freshness: %zu pending mutation(s) (%zu tables, %zu "
                  "overrides, %zu tombstones), generation %llu\n",
                  ss.delta_entries, ss.delta_tables, ss.delta_overrides,
                  ss.delta_tombstones,
                  static_cast<unsigned long long>(ss.delta_generation));
    }
    std::printf("memory: format v%u — %.1f MB mapped, %.1f MB heap%s\n",
                ss.corpus_format,
                ss.mapped_bytes / (1024.0 * 1024.0),
                ss.heap_bytes / (1024.0 * 1024.0),
                ss.mapped_bytes > 0 ? " (zero-copy serve)" : "");
    std::printf("cold start: %.3f s load vs corpus rebuild (see "
                "bench_throughput for the ratio)\n",
                load_seconds);
  }
  if (json) {
    print_worker_json();
  } else {
    print_worker_text(stdout);
  }
  if (failed > 0) {
    return Fail(std::to_string(failed) + " of " +
                std::to_string(s.num_queries) + " queries failed");
  }
  return 0;
}
