// Copyright 2026 The WWT Authors
//
// wwt_serve: the online half of the indexer/server split. Cold-starts
// from a `.wwtsnap` snapshot (memory-mapped when the platform allows)
// instead of rebuilding the corpus, then serves column-keyword query
// batches through the QueryRunner thread pool and reports aggregate
// throughput and latency.
//
// Usage:
//   wwt_serve --snapshot PATH [--threads N] [--batch-mult M]
//             [--queries FILE] [--quiet]
//
// Queries come from --queries (one query per line, columns separated by
// '|': "name of explorers | nationality"), or default to the workload
// stored in the snapshot, replicated --batch-mult times.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "index/snapshot.h"
#include "util/timer.h"
#include "wwt/query_runner.h"

namespace {

/// "a | b | c" -> {"a", "b", "c"}, trimmed; empty columns dropped.
std::vector<std::string> SplitColumns(const std::string& line) {
  std::vector<std::string> cols;
  std::string col;
  std::istringstream in(line);
  while (std::getline(in, col, '|')) {
    const size_t begin = col.find_first_not_of(" \t");
    if (begin == std::string::npos) continue;
    const size_t end = col.find_last_not_of(" \t");
    cols.push_back(col.substr(begin, end - begin + 1));
  }
  return cols;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --snapshot PATH [--threads N] [--batch-mult M]\n"
               "          [--queries FILE] [--quiet]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string snapshot_path, queries_path;
  int threads = 0;
  int batch_mult = 1;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--snapshot") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      snapshot_path = v;
    } else if (arg == "--queries") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      queries_path = v;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      threads = std::atoi(v);
    } else if (arg == "--batch-mult") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      batch_mult = std::max(1, std::atoi(v));
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (snapshot_path.empty()) return Usage(argv[0]);

  // Cold start: one file read instead of a corpus rebuild.
  wwt::WallTimer load_timer;
  wwt::SnapshotInfo info;
  wwt::StatusOr<wwt::Corpus> corpus =
      wwt::LoadSnapshot(snapshot_path, &info);
  if (!corpus.ok()) {
    std::fprintf(stderr, "wwt_serve: %s\n",
                 corpus.status().ToString().c_str());
    return 1;
  }
  const double load_seconds = load_timer.ElapsedSeconds();
  std::printf(
      "loaded %llu tables, %llu terms from %s in %.3f s "
      "(format v%u, hash %016llx)\n",
      static_cast<unsigned long long>(info.num_tables),
      static_cast<unsigned long long>(info.num_terms),
      snapshot_path.c_str(), load_seconds, info.format_version,
      static_cast<unsigned long long>(info.content_hash));

  // The batch.
  std::vector<std::vector<std::string>> queries;
  std::vector<std::string> names;
  if (!queries_path.empty()) {
    std::ifstream in(queries_path);
    if (!in) {
      std::fprintf(stderr, "wwt_serve: cannot read '%s'\n",
                   queries_path.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      std::vector<std::string> cols = SplitColumns(line);
      if (cols.empty()) continue;
      names.push_back(line);
      queries.push_back(std::move(cols));
    }
  } else {
    for (int m = 0; m < batch_mult; ++m) {
      for (const wwt::ResolvedQuery& rq : corpus->queries) {
        std::vector<std::string> cols;
        for (const wwt::QueryColumnSpec& col : rq.spec.columns) {
          cols.push_back(col.keywords);
        }
        names.push_back(rq.spec.name);
        queries.push_back(std::move(cols));
      }
    }
  }
  if (queries.empty()) {
    std::fprintf(stderr, "wwt_serve: no queries to run\n");
    return 1;
  }

  wwt::RunnerOptions runner_options;
  runner_options.num_threads = threads;
  wwt::QueryRunner runner(&corpus->store, corpus->index.get(),
                          runner_options);
  std::printf("serving %zu queries with %d thread(s)...\n", queries.size(),
              runner.num_threads());
  wwt::BatchResult batch = runner.RunBatch(queries);

  if (!quiet) {
    for (size_t i = 0; i < batch.executions.size(); ++i) {
      const wwt::QueryExecution& exec = batch.executions[i];
      std::printf("%-40.40s %4zu rows  %7.1f ms\n", names[i].c_str(),
                  exec.answer.rows.size(), exec.timing.Total() * 1e3);
    }
  }

  const wwt::BatchStats& s = batch.stats;
  std::printf("\n%zu queries in %.2f s — %.1f QPS at concurrency %d\n",
              s.num_queries, s.wall_seconds, s.qps, s.concurrency);
  std::printf("latency ms: mean %.1f  p50 %.1f  p95 %.1f  p99 %.1f\n",
              s.latency.mean * 1e3, s.latency.p50 * 1e3,
              s.latency.p95 * 1e3, s.latency.p99 * 1e3);
  std::printf("cold start: %.3f s load vs corpus rebuild (see "
              "bench_throughput for the ratio)\n",
              load_seconds);
  return 0;
}
