// Copyright 2026 The WWT Authors
//
// Offline-pipeline example: run the §2.1 extraction stack on raw HTML —
// either a file passed as argv[1] or a built-in demo page modeled on the
// paper's Fig. 1 — and print what the harvester found: data-table
// verdicts, detected titles/headers, and scored context snippets.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "extract/harvester.h"

namespace {

const char kDemoPage[] = R"html(
<html><head><title>List of explorers - WebPedia</title></head><body>
<table class="nav"><tr><td>Home</td><td>Articles</td><td>About</td></tr></table>
<h1>List of explorers</h1>
<p>This article lists the explorations in history. For the documentary
'Explorations, powered by Duracell', see Explorations (TV).</p>
<table border="1">
  <tr><td colspan="2"><b>Explorations</b></td></tr>
  <tr><th>Exploration</th><th>Who (explorer)</th></tr>
  <tr><td>Sea route to India</td><td>Vasco da Gama</td></tr>
  <tr><td>Caribbean</td><td>Christopher Columbus</td></tr>
  <tr><td>Oceania</td><td>Abel Tasman</td></tr>
</table>
<p>All areas will be available for mineral exploration and mining.</p>
</body></html>
)html";

}  // namespace

int main(int argc, char** argv) {
  std::string html;
  std::string source = "built-in Fig. 1 demo page";
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    html = ss.str();
    source = argv[1];
  } else {
    html = kDemoPage;
  }

  wwt::HarvestStats stats;
  std::vector<wwt::WebTable> tables =
      wwt::HarvestPage(html, source, {}, &stats);

  std::printf("Source: %s\n", source.c_str());
  std::printf("<table> tags: %d, accepted data tables: %d\n",
              stats.table_tags, stats.data_tables);
  for (const auto& [verdict, count] : stats.verdicts) {
    std::printf("  verdict %-10s %d\n",
                wwt::TableVerdictToString(verdict), count);
  }

  for (const wwt::WebTable& t : tables) {
    std::printf("\n--- data table #%d (%d cols, %d body rows) ---\n",
                t.ordinal, t.num_cols, t.num_body_rows());
    for (const std::string& title : t.title_rows) {
      std::printf("title   : %s\n", title.c_str());
    }
    for (const auto& row : t.header_rows) {
      std::printf("header  :");
      for (const auto& cell : row) std::printf(" [%s]", cell.c_str());
      std::printf("\n");
    }
    int shown = 0;
    for (const auto& row : t.body) {
      std::printf("body    :");
      for (const auto& cell : row) std::printf(" [%s]", cell.c_str());
      std::printf("\n");
      if (++shown >= 5) break;
    }
    for (const wwt::ContextSnippet& snip : t.context) {
      std::printf("context : (%.2f) %.70s\n", snip.score,
                  snip.text.c_str());
    }
  }
  return 0;
}
