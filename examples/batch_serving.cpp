// Copyright 2026 The WWT Authors
//
// Batch query serving through WwtService: build a corpus once (or
// cold-start it from a WWT_SNAPSHOT artifact), install it as the
// service's corpus snapshot, then answer the whole Table 1 workload in
// one RunBatch and print the aggregate serving stats — the programmatic
// face of the request/response serving layer.
//
// Usage: batch_serving [scale] [threads]
// Env:   WWT_SNAPSHOT=path.wwtsnap — build-or-load the corpus through a
//        snapshot file instead of regenerating it every run.

#include <cstdio>
#include <cstdlib>

#include "corpus/corpus_generator.h"
#include "index/snapshot.h"
#include "wwt/service.h"

int main(int argc, char** argv) {
  wwt::CorpusOptions corpus_options;
  corpus_options.scale = argc > 1 ? std::atof(argv[1]) : 0.5;

  const std::string snapshot = wwt::SnapshotPathFromEnv();
  std::printf(snapshot.empty()
                  ? "Building corpus (scale %.2f)...\n"
                  : "Build-or-load via WWT_SNAPSHOT (scale %.2f)...\n",
              corpus_options.scale);
  wwt::BuildOrLoadResult result =
      wwt::BuildOrLoadCorpus(corpus_options, snapshot);
  std::printf("%s in %.2f s\n",
              result.loaded ? "Loaded snapshot" : "Built",
              result.seconds);

  // One service for the process: a thread pool over an immutable corpus
  // snapshot (content-hashed when it came from a .wwtsnap artifact).
  wwt::ServiceOptions service_options;
  service_options.num_threads =
      argc > 2 ? std::atoi(argv[2]) : wwt::ThreadPool::DefaultNumThreads();
  auto service = wwt::WwtService::Create(service_options);
  if (!service.ok()) {
    std::fprintf(stderr, "batch_serving: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  (*service)->SwapCorpus(wwt::CorpusHandle::Own(
      std::move(result.corpus), result.info.content_hash, snapshot));
  const std::shared_ptr<const wwt::CorpusSet> corpus =
      (*service)->corpus();
  std::printf("%llu tables ready, serving with %d thread(s).\n\n",
              static_cast<unsigned long long>(corpus->num_tables()),
              (*service)->num_threads());

  // The whole workload as one batch of tagged requests.
  std::vector<wwt::QueryRequest> requests;
  for (const wwt::ResolvedQuery& rq : corpus->queries()) {
    wwt::QueryRequest request;
    for (const wwt::QueryColumnSpec& col : rq.spec.columns) {
      request.columns.push_back(col.keywords);
    }
    request.tag = rq.spec.name;
    requests.push_back(std::move(request));
  }
  wwt::BatchResponse batch = (*service)->RunBatch(std::move(requests));

  for (const wwt::QueryResponse& r : batch.responses) {
    if (!r.ok()) {
      std::printf("%-32.32s ERROR %s\n", r.tag.c_str(),
                  r.status.ToString().c_str());
      continue;
    }
    std::printf("%-32.32s %4zu rows  %6.1f ms  fp %016llx\n",
                r.tag.c_str(), r.answer.rows.size(),
                r.timing.Total() * 1e3,
                static_cast<unsigned long long>(r.fingerprint));
  }

  const wwt::BatchStats& s = batch.stats;
  std::printf("\n%zu queries in %.2f s — %.1f QPS at concurrency %d\n",
              s.num_queries, s.wall_seconds, s.qps, s.concurrency);
  std::printf("latency ms: mean %.1f  p50 %.1f  p95 %.1f  p99 %.1f\n",
              s.latency.mean * 1e3, s.latency.p50 * 1e3,
              s.latency.p95 * 1e3, s.latency.p99 * 1e3);
  std::printf("stage totals (s):\n");
  for (const auto& [stage, seconds] : s.total_stage_time.stages()) {
    std::printf("  %-16s %8.3f\n", stage.c_str(), seconds);
  }
  return batch.all_ok() ? 0 : 1;
}
