// Copyright 2026 The WWT Authors
//
// Batch query serving: build a corpus once (or cold-start it from a
// WWT_SNAPSHOT artifact), then answer the whole Table 1 workload in one
// QueryRunner batch and print the aggregate serving stats — the
// programmatic face of the high-throughput layer.
//
// Usage: batch_serving [scale] [threads]
// Env:   WWT_SNAPSHOT=path.wwtsnap — build-or-load the corpus through a
//        snapshot file instead of regenerating it every run.

#include <cstdio>
#include <cstdlib>

#include "corpus/corpus_generator.h"
#include "index/snapshot.h"
#include "wwt/query_runner.h"

int main(int argc, char** argv) {
  wwt::CorpusOptions corpus_options;
  corpus_options.scale = argc > 1 ? std::atof(argv[1]) : 0.5;

  const std::string snapshot = wwt::SnapshotPathFromEnv();
  std::printf(snapshot.empty()
                  ? "Building corpus (scale %.2f)...\n"
                  : "Build-or-load via WWT_SNAPSHOT (scale %.2f)...\n",
              corpus_options.scale);
  wwt::BuildOrLoadResult result =
      wwt::BuildOrLoadCorpus(corpus_options, snapshot);
  std::printf("%s in %.2f s\n",
              result.loaded ? "Loaded snapshot" : "Built",
              result.seconds);
  wwt::Corpus corpus = std::move(result.corpus);

  // One runner for the process: a thread pool plus one engine per
  // worker over the shared read-only store and index.
  wwt::RunnerOptions runner_options;
  runner_options.num_threads =
      argc > 2 ? std::atoi(argv[2]) : wwt::ThreadPool::DefaultNumThreads();
  wwt::QueryRunner runner(&corpus.store, corpus.index.get(),
                          runner_options);
  std::printf("%zu tables ready, serving with %d thread(s).\n\n",
              corpus.store.size(), runner.num_threads());

  // The whole workload as one batch.
  std::vector<std::vector<std::string>> queries;
  for (const wwt::ResolvedQuery& rq : corpus.queries) {
    std::vector<std::string> cols;
    for (const wwt::QueryColumnSpec& col : rq.spec.columns) {
      cols.push_back(col.keywords);
    }
    queries.push_back(std::move(cols));
  }
  wwt::BatchResult batch = runner.RunBatch(queries);

  for (size_t i = 0; i < batch.executions.size(); ++i) {
    const wwt::QueryExecution& exec = batch.executions[i];
    std::printf("%-32.32s %4zu rows  %6.1f ms\n",
                corpus.queries[i].spec.name.c_str(),
                exec.answer.rows.size(), exec.timing.Total() * 1e3);
  }

  const wwt::BatchStats& s = batch.stats;
  std::printf("\n%zu queries in %.2f s — %.1f QPS at concurrency %d\n",
              s.num_queries, s.wall_seconds, s.qps, s.concurrency);
  std::printf("latency ms: mean %.1f  p50 %.1f  p95 %.1f  p99 %.1f\n",
              s.latency.mean * 1e3, s.latency.p50 * 1e3,
              s.latency.p95 * 1e3, s.latency.p99 * 1e3);
  std::printf("stage totals (s):\n");
  for (const auto& [stage, seconds] : s.total_stage_time.stages()) {
    std::printf("  %-16s %8.3f\n", stage.c_str(), seconds);
  }
  return 0;
}
