// Copyright 2026 The WWT Authors
//
// Interactive CLI: build a corpus once, install it in a WwtService, then
// answer column-keyword queries typed on stdin. Columns are separated by
// '|', exactly like the paper's query notation:
//
//   > name of explorers | nationality | areas explored
//
// Empty column segments ("a || b") are dropped while splitting, like
// the paper's notation implies; what still reaches the service
// malformed (e.g. more than 16 columns) comes back as a clean
// InvalidArgument response instead of misbehaving silently.
//
// Usage: wwt_search [scale] [seed]

#include <cstdio>
#include <iostream>
#include <string>

#include "corpus/corpus_generator.h"
#include "util/string_util.h"
#include "wwt/service.h"

int main(int argc, char** argv) {
  wwt::CorpusOptions options;
  options.scale = argc > 1 ? std::atof(argv[1]) : 0.5;
  options.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  std::printf("Building corpus (scale %.2f, seed %llu)...\n",
              options.scale,
              static_cast<unsigned long long>(options.seed));
  wwt::Corpus corpus = wwt::GenerateCorpus(options);
  const size_t num_tables = corpus.store.size();

  auto service = wwt::WwtService::Create();
  if (!service.ok()) {
    std::fprintf(stderr, "wwt_search: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  (*service)->SwapCorpus(wwt::CorpusHandle::Own(std::move(corpus)));
  std::printf("%zu tables ready. Enter queries as 'col1 | col2 | ...' "
              "(empty line quits).\n\n",
              num_tables);

  std::string line;
  while (std::printf("> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (wwt::StripWhitespace(line).empty()) break;
    std::vector<std::string> columns;
    for (const std::string& piece : wwt::Split(line, "|")) {
      std::string col(wwt::StripWhitespace(piece));
      if (!col.empty()) columns.push_back(col);
    }
    if (columns.empty()) continue;

    wwt::QueryResponse response =
        (*service)->Run(wwt::QueryRequest::Of(columns).WithTag(line));
    if (!response.ok()) {
      std::printf("[%s]\n\n", response.status.ToString().c_str());
      continue;
    }
    int relevant = 0;
    for (const auto& tm : response.mapping.tables) relevant += tm.relevant;
    std::printf("[%zu candidates, %d relevant, %.0f ms, fp %016llx]\n",
                response.retrieval.tables.size(), relevant,
                response.timing.Total() * 1e3,
                static_cast<unsigned long long>(response.fingerprint));

    for (const std::string& col : columns) std::printf("%-24.24s", col.c_str());
    std::printf("%8s\n", "support");
    int shown = 0;
    for (const wwt::AnswerRow& row : response.answer.rows) {
      for (const std::string& cell : row.cells) {
        std::printf("%-24.24s", cell.c_str());
      }
      std::printf("%8d\n", row.support);
      if (++shown >= 12) break;
    }
    if (response.answer.rows.size() > 12) {
      std::printf("... (%zu rows total)\n", response.answer.rows.size());
    }
    std::printf("\n");
  }
  return 0;
}
