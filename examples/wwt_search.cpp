// Copyright 2026 The WWT Authors
//
// Interactive CLI: build (or load) a corpus once, then answer column-
// keyword queries typed on stdin. Columns are separated by '|', exactly
// like the paper's query notation:
//
//   > name of explorers | nationality | areas explored
//
// Usage: wwt_search [scale] [seed]

#include <cstdio>
#include <iostream>
#include <string>

#include "corpus/corpus_generator.h"
#include "util/string_util.h"
#include "wwt/engine.h"

int main(int argc, char** argv) {
  wwt::CorpusOptions options;
  options.scale = argc > 1 ? std::atof(argv[1]) : 0.5;
  options.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  std::printf("Building corpus (scale %.2f, seed %llu)...\n",
              options.scale,
              static_cast<unsigned long long>(options.seed));
  wwt::Corpus corpus = wwt::GenerateCorpus(options);
  wwt::WwtEngine engine(&corpus.store, corpus.index.get(), {});
  std::printf("%zu tables ready. Enter queries as 'col1 | col2 | ...' "
              "(empty line quits).\n\n",
              corpus.store.size());

  std::string line;
  while (std::printf("> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (wwt::StripWhitespace(line).empty()) break;
    std::vector<std::string> columns;
    for (const std::string& piece : wwt::Split(line, "|")) {
      std::string col(wwt::StripWhitespace(piece));
      if (!col.empty()) columns.push_back(col);
    }
    if (columns.empty()) continue;

    wwt::QueryExecution exec = engine.Execute(columns);
    int relevant = 0;
    for (const auto& tm : exec.mapping.tables) relevant += tm.relevant;
    std::printf("[%zu candidates, %d relevant, %.0f ms]\n",
                exec.retrieval.tables.size(), relevant,
                exec.timing.Total() * 1e3);

    for (const std::string& col : columns) std::printf("%-24.24s", col.c_str());
    std::printf("%8s\n", "support");
    int shown = 0;
    for (const wwt::AnswerRow& row : exec.answer.rows) {
      for (const std::string& cell : row.cells) {
        std::printf("%-24.24s", cell.c_str());
      }
      std::printf("%8d\n", row.support);
      if (++shown >= 12) break;
    }
    if (exec.answer.rows.size() > 12) {
      std::printf("... (%zu rows total)\n", exec.answer.rows.size());
    }
    std::printf("\n");
  }
  return 0;
}
