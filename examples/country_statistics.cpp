// Copyright 2026 The WWT Authors
//
// Domain example: assembling country statistics. The "countries" subject
// area serves five different Table 1 queries (currency, GDP, population,
// exchange rate, fuel consumption); this example runs three of them over
// one corpus and shows how the same web tables answer different column
// keyword queries with different column mappings.

#include <cstdio>

#include "corpus/corpus_generator.h"
#include "wwt/engine.h"

namespace {

void RunQuery(wwt::WwtEngine& engine,
              const std::vector<std::string>& columns) {
  wwt::QueryExecution exec = engine.Execute(columns);
  int relevant = 0;
  for (const auto& tm : exec.mapping.tables) relevant += tm.relevant;

  std::string name;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i) name += " | ";
    name += columns[i];
  }
  std::printf("\n== %s ==\n", name.c_str());
  std::printf("   candidates %zu, relevant %d, answer rows %zu\n",
              exec.retrieval.tables.size(), relevant,
              exec.answer.rows.size());
  int shown = 0;
  for (const wwt::AnswerRow& row : exec.answer.rows) {
    std::printf("   %-22s", row.cells[0].c_str());
    for (size_t c = 1; c < row.cells.size(); ++c) {
      std::printf(" %-18s", row.cells[c].c_str());
    }
    std::printf(" (support %d)\n", row.support);
    if (++shown >= 8) break;
  }
}

}  // namespace

int main() {
  wwt::CorpusOptions options;
  options.seed = 42;
  options.scale = 0.5;
  std::printf("Building corpus...\n");
  wwt::Corpus corpus = wwt::GenerateCorpus(options);
  std::printf("%zu tables indexed.\n", corpus.store.size());

  wwt::WwtEngine engine(&corpus.store, corpus.index.get(), {});

  RunQuery(engine, {"country", "currency"});
  RunQuery(engine, {"country", "population"});
  RunQuery(engine, {"country", "gdp"});

  std::printf("\nNote how the same candidate web tables appear for all "
              "three queries with different column mappings — that is the "
              "column mapping task.\n");
  return 0;
}
