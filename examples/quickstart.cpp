// Copyright 2026 The WWT Authors
//
// Quickstart: build a small synthetic web-table corpus, stand up a
// WwtService over it, run one column-keyword query through the full WWT
// pipeline (two-phase probe, column mapping, consolidation), and print
// the answer table.
//
// Usage: quickstart [scale]   (scale defaults to 0.5)

#include <cstdio>
#include <cstdlib>

#include "corpus/corpus_generator.h"
#include "wwt/service.h"

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.5;

  // 1. Build the corpus: synthetic web pages -> HTML parsing -> table
  //    extraction -> header/context detection -> inverted index.
  wwt::CorpusOptions corpus_options;
  corpus_options.seed = 42;
  corpus_options.scale = scale;
  std::printf("Generating corpus (scale %.2f)...\n", scale);
  wwt::Corpus corpus = wwt::GenerateCorpus(corpus_options);
  std::printf("  %zu tables extracted from %d table tags "
              "(%d rejected as non-data)\n",
              corpus.store.size(), corpus.harvest_stats.table_tags,
              corpus.harvest_stats.table_tags -
                  corpus.harvest_stats.data_tables);

  // 2. Stand the service up over the corpus and ask for a three-column
  //    table, Fig. 1's running example.
  auto service = wwt::WwtService::Create();
  if (!service.ok()) {
    std::fprintf(stderr, "quickstart: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  (*service)->SwapCorpus(wwt::CorpusHandle::Own(std::move(corpus)));

  wwt::QueryRequest request = wwt::QueryRequest::Of(
      {"name of explorers", "nationality", "areas explored"});
  std::printf("\nQuery: \"%s | %s | %s\"\n", request.columns[0].c_str(),
              request.columns[1].c_str(), request.columns[2].c_str());

  wwt::QueryResponse response = (*service)->Run(std::move(request));
  if (!response.ok()) {
    std::fprintf(stderr, "quickstart: %s\n",
                 response.status.ToString().c_str());
    return 1;
  }

  int relevant = 0;
  for (const auto& tm : response.mapping.tables) relevant += tm.relevant;
  std::printf("Candidates: %zu (probe 1: %d, new from probe 2: %d), "
              "relevant: %d\n",
              response.retrieval.tables.size(),
              response.retrieval.from_first_probe,
              response.retrieval.new_from_second_probe, relevant);

  // 3. Print the consolidated answer.
  std::printf("\n%-28s %-14s %-28s support\n", "Name", "Nationality",
              "Areas explored");
  int shown = 0;
  for (const wwt::AnswerRow& row : response.answer.rows) {
    std::printf("%-28s %-14s %-28s %d\n", row.cells[0].c_str(),
                row.cells[1].c_str(), row.cells[2].c_str(), row.support);
    if (++shown >= 15) break;
  }
  std::printf("(%zu rows total)\n", response.answer.rows.size());

  std::printf("\nStage timings (seconds):\n");
  for (const auto& [stage, seconds] : response.timing.stages()) {
    std::printf("  %-16s %.4f\n", stage.c_str(), seconds);
  }
  return 0;
}
