// Copyright 2026 The WWT Authors
//
// Lower-level example: drive the ColumnMapper directly (no engine) and
// compare the five inference algorithms of Table 2 on one query —
// independent per-table inference, the table-centric collective
// algorithm, constrained α-expansion, loopy BP, and TRW-S.

#include <cstdio>

#include "core/column_mapper.h"
#include "corpus/corpus_generator.h"
#include "util/timer.h"
#include "wwt/engine.h"

int main() {
  wwt::CorpusOptions corpus_options;
  corpus_options.seed = 42;
  corpus_options.scale = 0.5;
  std::printf("Building corpus...\n");
  wwt::Corpus corpus = wwt::GenerateCorpus(corpus_options);

  // Retrieve candidates once (shared across algorithms).
  wwt::WwtEngine engine(&corpus.store, corpus.index.get(), {});
  wwt::Query query = wwt::Query::Parse(
      {"fifa worlds cup winners", "year"}, *corpus.index);
  wwt::RetrievalResult retrieval = engine.Retrieve(query, nullptr);
  std::printf("%zu candidate tables for \"fifa worlds cup winners | "
              "year\"\n\n",
              retrieval.tables.size());

  std::printf("%-18s %10s %12s %12s\n", "algorithm", "relevant",
              "objective", "time (ms)");
  for (wwt::InferenceMode mode :
       {wwt::InferenceMode::kIndependent,
        wwt::InferenceMode::kTableCentric,
        wwt::InferenceMode::kAlphaExpansion,
        wwt::InferenceMode::kBeliefPropagation,
        wwt::InferenceMode::kTrws}) {
    wwt::MapperOptions options;
    options.mode = mode;
    wwt::ColumnMapper mapper(corpus.index.get(), options);
    wwt::WallTimer timer;
    wwt::MapResult result = mapper.Map(query, retrieval.tables);
    double ms = timer.ElapsedMillis();
    int relevant = 0;
    for (const auto& tm : result.tables) relevant += tm.relevant;
    std::printf("%-18s %10d %12.2f %12.2f\n",
                wwt::InferenceModeToString(mode), relevant,
                result.objective, ms);
  }

  std::printf("\nHigher objective = better fit to Eq. 9; the paper's "
              "table-centric algorithm is both accurate and the fastest "
              "collective option (§5.3).\n");
  return 0;
}
